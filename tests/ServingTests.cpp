//===- tests/ServingTests.cpp - Serving tier: framing, protocol, server ---===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The serving-tier contract (serve/Server.h, docs/SERVING.md):
//
//  - request framing is byte-exact and bounded: a hostile line longer
//    than the cap is rejected before it is ever handed out, whether it
//    arrives in one burst or dribbled byte by byte;
//  - every malformed request line in tests/corpus/wire/ comes back as a
//    structured error response with the error code its filename claims
//    -- never a crash or a dropped connection (corpus pattern: add a
//    file, no code change);
//  - a live server answers over loopback: lifecycle (start -> request
//    -> hot swap under load -> drain -> stop), per-connection bounds
//    (read timeout, size cap), load shedding, and per-phase degradation
//    reported end to end through the wire when faults are armed.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/OfflineTrainer.h"
#include "serve/Observability.h"
#include "serve/Server.h"
#include "serve/WireProtocol.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <atomic>
#include <fcntl.h>
#include <filesystem>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <thread>

using namespace opprox;
using namespace opprox::serve;

#ifndef OPPROX_TEST_WIRE_CORPUS_DIR
#error "OPPROX_TEST_WIRE_CORPUS_DIR must point at tests/corpus/wire"
#endif

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// One cheap trained artifact shared by every test in this file, saved
/// to disk once (the server loads artifacts by path).
const std::string &artifactPath() {
  static std::string Path = [] {
    auto App = createApp("pso");
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 6;
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
    OpproxArtifact Art = OfflineTrainer::train(*App, Opts).Artifact;
    std::string P = tempPath("serving-pso.opprox.json");
    std::optional<Error> E = Art.save(P);
    EXPECT_FALSE(E.has_value()) << (E ? E->message() : "");
    return P;
  }();
  return Path;
}

/// A loopback client speaking the newline-delimited protocol.
struct TestClient {
  Socket Sock;
  LineFramer Framer{1 << 20};

  static TestClient connectTo(uint16_t Port) {
    TestClient C;
    Expected<Socket> S = connectTcp("127.0.0.1", Port);
    EXPECT_TRUE(static_cast<bool>(S)) << (S ? "" : S.error().message());
    if (S) {
      EXPECT_FALSE(setRecvTimeoutMs(*S, 10000).has_value());
      C.Sock = std::move(*S);
    }
    return C;
  }

  bool sendLine(const std::string &Line) {
    return !sendAll(Sock, Line + "\n").has_value();
  }

  /// Receives one response line; empty optional on EOF/timeout.
  std::optional<std::string> recvLine() {
    std::string Line;
    std::string Chunk;
    while (!Framer.next(Line)) {
      Chunk.clear();
      RecvResult R = recvSome(Sock, Chunk);
      if (R.Status != IoStatus::Ok)
        return std::nullopt;
      if (!Framer.feed(Chunk.data(), Chunk.size()))
        return std::nullopt;
    }
    return Line;
  }

  /// Sends a request and returns the parsed response object.
  Json roundTrip(const std::string &Request) {
    EXPECT_TRUE(sendLine(Request));
    std::optional<std::string> Line = recvLine();
    EXPECT_TRUE(Line.has_value()) << "no response to: " << Request;
    if (!Line)
      return Json();
    Expected<Json> Doc = Json::parse(*Line);
    EXPECT_TRUE(static_cast<bool>(Doc)) << *Line;
    return Doc ? *Doc : Json();
  }
};

bool responseOk(const Json &Response) {
  Expected<bool> Ok = getBool(Response, "ok");
  return Ok && *Ok;
}

std::string responseErrorCode(const Json &Response) {
  Expected<const Json *> ErrorDoc = getObject(Response, "error");
  if (!ErrorDoc)
    return "";
  Expected<std::string> Code = getString(**ErrorDoc, "code");
  return Code ? *Code : "";
}

std::unique_ptr<Server> startTestServer(ServeOptions Opts,
                                        std::vector<ServeAppConfig> Apps = {
                                            {"", artifactPath()}}) {
  Expected<std::unique_ptr<Server>> Srv =
      Server::start(std::move(Apps), Opts);
  EXPECT_TRUE(static_cast<bool>(Srv))
      << (Srv ? "" : Srv.error().message());
  return Srv ? std::move(*Srv) : nullptr;
}

class ServingTest : public ::testing::Test {
protected:
  void TearDown() override { FaultRegistry::global().clear(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Request framing
//===----------------------------------------------------------------------===//

TEST(LineFramerTest, SplitsLinesAcrossArbitraryFeedBoundaries) {
  LineFramer F(1024);
  std::string Stream = "first\nsecond line\r\nthird\n";
  // Feed byte by byte: framing must not depend on chunk boundaries.
  for (char C : Stream)
    ASSERT_TRUE(F.feed(&C, 1));
  std::string Line;
  ASSERT_TRUE(F.next(Line));
  EXPECT_EQ(Line, "first");
  ASSERT_TRUE(F.next(Line));
  EXPECT_EQ(Line, "second line"); // \r\n accepted, \r stripped.
  ASSERT_TRUE(F.next(Line));
  EXPECT_EQ(Line, "third");
  EXPECT_FALSE(F.next(Line));
  EXPECT_EQ(F.buffered(), 0u);
}

TEST(LineFramerTest, OversizedCompleteLineInOneBurstIsRejected) {
  // The regression this guards: a line that arrives already terminated
  // must still be counted against the cap -- the overflow check cannot
  // only cover the unterminated tail.
  LineFramer F(16);
  std::string Burst(100, 'x');
  Burst += "\n";
  EXPECT_FALSE(F.feed(Burst.data(), Burst.size()));
  EXPECT_TRUE(F.overflowed());
  std::string Line;
  EXPECT_FALSE(F.next(Line));
}

TEST(LineFramerTest, OversizedUnterminatedTailIsRejected) {
  LineFramer F(16);
  std::string Dribble(17, 'y');
  bool Accepted = true;
  for (char C : Dribble)
    Accepted = Accepted && F.feed(&C, 1);
  EXPECT_FALSE(Accepted);
  EXPECT_TRUE(F.overflowed());
}

TEST(LineFramerTest, LinesUnderTheCapPassAfterLongStream) {
  // The per-frame counter must reset at every newline: many small lines
  // must never accumulate toward the cap.
  LineFramer F(32);
  for (int I = 0; I < 1000; ++I) {
    std::string Line = "line\n";
    ASSERT_TRUE(F.feed(Line.data(), Line.size()));
    std::string Out;
    ASSERT_TRUE(F.next(Out));
    EXPECT_EQ(Out, "line");
  }
}

TEST(SocketTest, SendAllRidesOutFullKernelBuffersOnNonBlockingSockets) {
  // Regression: server connections are non-blocking, and a pipelined
  // client can fill the kernel send buffer. sendAll must then wait for
  // writability and resume -- failing after a partial write would leave
  // the peer a truncated line with no way to resynchronize.
  Expected<Socket> Listener = listenTcp("127.0.0.1", 0);
  ASSERT_TRUE(static_cast<bool>(Listener)) << Listener.error().message();
  Expected<uint16_t> Port = boundPort(*Listener);
  ASSERT_TRUE(static_cast<bool>(Port)) << Port.error().message();
  Expected<Socket> Client = connectTcp("127.0.0.1", *Port);
  ASSERT_TRUE(static_cast<bool>(Client)) << Client.error().message();
  Socket Accepted;
  ASSERT_EQ(acceptConnection(*Listener, Accepted).Status, IoStatus::Ok);

  // Shrink the send buffer and go non-blocking, exactly like a served
  // connection: a multi-megabyte payload must hit EAGAIN mid-send.
  int SndBuf = 4096;
  ASSERT_EQ(::setsockopt(Accepted.fd(), SOL_SOCKET, SO_SNDBUF, &SndBuf,
                         sizeof(SndBuf)),
            0);
  int Flags = ::fcntl(Accepted.fd(), F_GETFL, 0);
  ASSERT_EQ(::fcntl(Accepted.fd(), F_SETFL, Flags | O_NONBLOCK), 0);

  std::string Payload;
  for (size_t I = 0; Payload.size() < (4u << 20); ++I)
    Payload += "line-" + std::to_string(I) + "\n";

  std::string Received;
  std::thread Reader([&] {
    // Let the sender fill every buffer first so EAGAIN is guaranteed.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::string Chunk;
    while (Received.size() < Payload.size()) {
      Chunk.clear();
      if (recvSome(*Client, Chunk, 64 * 1024).Status != IoStatus::Ok)
        break;
      Received += Chunk;
    }
  });
  std::optional<Error> E = sendAll(Accepted, Payload);
  EXPECT_FALSE(E.has_value()) << (E ? E->message() : "");
  Accepted.close(); // EOF for the reader in case the send failed short.
  Reader.join();
  EXPECT_EQ(Received, Payload) << "received " << Received.size() << " of "
                               << Payload.size() << " bytes";
}

//===----------------------------------------------------------------------===//
// Malformed-request corpus (tests/corpus/wire/)
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::filesystem::path> wireCorpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(OPPROX_TEST_WIRE_CORPUS_DIR))
    if (Entry.is_regular_file())
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Corpus naming contract: "<expected-error-code>--<description>.txt".
std::string expectedCode(const std::filesystem::path &Path) {
  std::string Stem = Path.stem().string();
  return Stem.substr(0, Stem.find("--"));
}

class WireCorpusTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

std::string wireParamName(
    const ::testing::TestParamInfo<std::filesystem::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST(WireCorpusSuite, CorpusDirectoryIsPopulated) {
  // Guards against a path typo silently instantiating zero cases.
  EXPECT_GE(wireCorpusFiles().size(), 12u);
}

TEST_P(WireCorpusTest, ParserRejectsWithTheAdvertisedCode) {
  Expected<std::string> Text = readFile(GetParam().string());
  ASSERT_TRUE(static_cast<bool>(Text)) << GetParam();
  Expected<ServeRequest> Req = parseServeRequest(*Text);
  ASSERT_FALSE(static_cast<bool>(Req))
      << GetParam() << " parsed successfully but must be rejected";
  EXPECT_EQ(requestErrorCode(Req.error()), expectedCode(GetParam()))
      << GetParam() << ": " << Req.error().message();
}

INSTANTIATE_TEST_SUITE_P(Corpus, WireCorpusTest,
                         ::testing::ValuesIn(wireCorpusFiles()),
                         wireParamName);

//===----------------------------------------------------------------------===//
// Request parsing (well-formed)
//===----------------------------------------------------------------------===//

TEST(WireProtocolTest, MinimalRequestGetsDocumentedDefaults) {
  Expected<ServeRequest> Req = parseServeRequest("{\"budget\": 7.5}");
  ASSERT_TRUE(static_cast<bool>(Req)) << Req.error().message();
  EXPECT_EQ(Req->Budget, 7.5);
  EXPECT_TRUE(Req->App.empty());
  EXPECT_TRUE(Req->Input.empty());
  // Absent members stay absent, so the server's configured base
  // OptimizeOptions -- not a parser-invented default -- decide.
  EXPECT_FALSE(Req->Confidence.has_value());
  EXPECT_FALSE(Req->Aggressive.has_value());
  EXPECT_TRUE(Req->Id.isNull());
}

TEST(WireProtocolTest, FullRequestRoundTripsEveryMember) {
  Expected<ServeRequest> Req = parseServeRequest(
      "{\"id\": \"r-1\", \"app\": \"pso\", \"budget\": 10, "
      "\"input\": [30, 5], \"confidence\": 0.9, \"aggressive\": true}");
  ASSERT_TRUE(static_cast<bool>(Req)) << Req.error().message();
  EXPECT_EQ(Req->Id.asString(), "r-1");
  EXPECT_EQ(Req->App, "pso");
  EXPECT_EQ(Req->Input, (std::vector<double>{30.0, 5.0}));
  ASSERT_TRUE(Req->Confidence.has_value());
  EXPECT_EQ(*Req->Confidence, 0.9);
  ASSERT_TRUE(Req->Aggressive.has_value());
  EXPECT_TRUE(*Req->Aggressive);
}

TEST(WireProtocolTest, ErrorResponseEchoesIdAndCode) {
  std::string Line = errorResponseLine(Json(42.0), errc::Overloaded, "full");
  Expected<Json> Doc = Json::parse(Line);
  ASSERT_TRUE(static_cast<bool>(Doc));
  EXPECT_FALSE(responseOk(*Doc));
  EXPECT_EQ(responseErrorCode(*Doc), "overloaded");
  Expected<double> Id = getNumber(*Doc, "id");
  ASSERT_TRUE(static_cast<bool>(Id));
  EXPECT_EQ(*Id, 42.0);
}

//===----------------------------------------------------------------------===//
// Server lifecycle over loopback
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, StartRefusesMissingArtifact) {
  Expected<std::unique_ptr<Server>> Srv = Server::start(
      {{"", tempPath("no-such-artifact.json")}}, ServeOptions{});
  EXPECT_FALSE(static_cast<bool>(Srv));
}

TEST_F(ServingTest, StartRefusesDuplicateAppNames) {
  Expected<std::unique_ptr<Server>> Srv = Server::start(
      {{"dup", artifactPath()}, {"dup", artifactPath()}}, ServeOptions{});
  EXPECT_FALSE(static_cast<bool>(Srv));
}

TEST_F(ServingTest, ServesRequestsAndReportsErrorsInOrder) {
  ServeOptions Opts;
  Opts.Shards = 2;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  EXPECT_EQ(Srv->appNames(), std::vector<std::string>{"pso"});

  TestClient C = TestClient::connectTo(Srv->port());
  Json Ok = C.roundTrip("{\"budget\": 10, \"id\": 1}");
  ASSERT_TRUE(responseOk(Ok));
  Expected<const Json *> Result = getObject(Ok, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Expected<std::string> App = getString(**Result, "app");
  ASSERT_TRUE(static_cast<bool>(App));
  EXPECT_EQ(*App, "pso");

  // A malformed line mid-stream gets its error response in order and
  // leaves the connection serving.
  Json Bad = C.roundTrip("{broken");
  EXPECT_FALSE(responseOk(Bad));
  EXPECT_EQ(responseErrorCode(Bad), "parse_error");

  Json Unknown = C.roundTrip("{\"budget\": 5, \"app\": \"nope\"}");
  EXPECT_FALSE(responseOk(Unknown));
  EXPECT_EQ(responseErrorCode(Unknown), "unknown_app");

  Json Invalid = C.roundTrip("{\"budget\": -3}");
  EXPECT_FALSE(responseOk(Invalid));
  EXPECT_EQ(responseErrorCode(Invalid), "bad_request");

  Json StillOk = C.roundTrip("{\"budget\": 10, \"id\": 2}");
  EXPECT_TRUE(responseOk(StillOk));
  Srv->shutdown();
}

TEST_F(ServingTest, MultipleResidentArtifactsAreAddressedByName) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(
      Opts, {{"alpha", artifactPath()}, {"beta", artifactPath()}});
  ASSERT_NE(Srv, nullptr);
  EXPECT_EQ(Srv->appNames(), (std::vector<std::string>{"alpha", "beta"}));

  TestClient C = TestClient::connectTo(Srv->port());
  EXPECT_TRUE(responseOk(C.roundTrip("{\"budget\": 10, \"app\": \"beta\"}")));

  // With several residents an unaddressed request is ambiguous.
  Json Ambiguous = C.roundTrip("{\"budget\": 10}");
  EXPECT_FALSE(responseOk(Ambiguous));
  EXPECT_EQ(responseErrorCode(Ambiguous), "bad_request");
}

TEST_F(ServingTest, ServerConfiguredOptimizeOptionsApplyWhenRequestOmitsThem) {
  // Regression guard: a request without "confidence"/"aggressive" must
  // run under the embedder-configured base OptimizeOptions (Server.h
  // documents ServeOptions::Optimize as the default for every request),
  // not under parser-invented defaults that silently override them.
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.Optimize.ConfidenceP = 0.5;
  Opts.Optimize.Conservative = false;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);

  Expected<OpproxRuntime> Local = OpproxRuntime::load(artifactPath());
  ASSERT_TRUE(static_cast<bool>(Local)) << Local.error().message();
  const std::vector<double> &Input = Local->artifact().DefaultInput;
  OptimizeOptions Base = Opts.Optimize;
  Base.NumThreads = 1; // start() forces per-request serial execution.
  Base.Pool = nullptr;
  Expected<OptimizationResult> R =
      Local->tryOptimizeDetailed(Input, 10.0, Base);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  std::string LocalDoc =
      optimizationResultJson(Local->artifact(), 10.0, Input, *R).dump();

  TestClient C = TestClient::connectTo(Srv->port());
  Json Response = C.roundTrip("{\"budget\": 10}");
  ASSERT_TRUE(responseOk(Response));
  Expected<const Json *> Result = getObject(Response, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  EXPECT_EQ((*Result)->dump(), LocalDoc);
}

TEST_F(ServingTest, FeedbackRequiresTheOnlineControlOptIn) {
  // ServeOptions::OnlineControl defaults to off: a "feedback" member is
  // a bad request, not a silently ignored one, and the connection keeps
  // serving afterwards.
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());
  Json Rejected = C.roundTrip("{\"budget\": 10, \"feedback\": [1.5]}");
  EXPECT_FALSE(responseOk(Rejected));
  EXPECT_EQ(responseErrorCode(Rejected), "bad_request");
  Json Plain = C.roundTrip("{\"budget\": 10}");
  EXPECT_TRUE(responseOk(Plain));
}

TEST_F(ServingTest, FeedbackArityBeyondThePhaseCountIsRejected) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.OnlineControl = true;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());
  // The shared artifact has 4 phases; 5 observations cannot map.
  Json Response =
      C.roundTrip("{\"budget\": 10, \"feedback\": [0, 0, 0, 0, 0]}");
  EXPECT_FALSE(responseOk(Response));
  EXPECT_EQ(responseErrorCode(Response), "bad_request");
}

TEST_F(ServingTest, FeedbackStepsTheControllerAndReportsControlState) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.OnlineControl = true;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  // Zero-drift feedback: the controller must not react, and the planned
  // schedule must match the plain (feedback-free) optimize response.
  Json Plain = C.roundTrip("{\"budget\": 10}");
  ASSERT_TRUE(responseOk(Plain));
  Expected<const Json *> PlainResult = getObject(Plain, "result");
  ASSERT_TRUE(static_cast<bool>(PlainResult));
  Expected<const Json *> PlainSchedule =
      getMember(**PlainResult, "schedule");
  ASSERT_TRUE(static_cast<bool>(PlainSchedule));

  Json Calm = C.roundTrip("{\"budget\": 10, \"feedback\": [0, 0, 0, 0]}");
  ASSERT_TRUE(responseOk(Calm));
  Expected<const Json *> CalmResult = getObject(Calm, "result");
  ASSERT_TRUE(static_cast<bool>(CalmResult));
  Expected<const Json *> Control = getObject(**CalmResult, "control");
  ASSERT_TRUE(static_cast<bool>(Control));
  Expected<double> NextPhase = getNumber(**Control, "next_phase");
  ASSERT_TRUE(static_cast<bool>(NextPhase));
  EXPECT_EQ(*NextPhase, 4.0);
  Expected<double> Corrections = getNumber(**Control, "corrections");
  ASSERT_TRUE(static_cast<bool>(Corrections));
  EXPECT_EQ(*Corrections, 0.0);
  Expected<const Json *> CalmSchedule = getMember(**CalmResult, "schedule");
  ASSERT_TRUE(static_cast<bool>(CalmSchedule));
  EXPECT_EQ((*CalmSchedule)->dump(), (*PlainSchedule)->dump());

  // A loud first-phase overrun: the controller distrusts and reports
  // its accounting; the response is still a success.
  Json Hot = C.roundTrip("{\"budget\": 10, \"feedback\": [8.0]}");
  ASSERT_TRUE(responseOk(Hot));
  Expected<const Json *> HotResult = getObject(Hot, "result");
  ASSERT_TRUE(static_cast<bool>(HotResult));
  Expected<const Json *> HotControl = getObject(**HotResult, "control");
  ASSERT_TRUE(static_cast<bool>(HotControl));
  Expected<double> Distrusts = getNumber(**HotControl, "distrusts");
  ASSERT_TRUE(static_cast<bool>(Distrusts));
  EXPECT_GE(*Distrusts, 1.0);
  Expected<double> Spent = getNumber(**HotControl, "spent_qos");
  ASSERT_TRUE(static_cast<bool>(Spent));
  EXPECT_EQ(*Spent, 8.0);
  Expected<double> Remaining = getNumber(**HotControl, "remaining_budget");
  ASSERT_TRUE(static_cast<bool>(Remaining));
  EXPECT_EQ(*Remaining, 2.0);
}

TEST_F(ServingTest, HotSwapUnderLoadLosesNoRequests) {
  ServeOptions Opts;
  Opts.Shards = 2;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  Counter &HotSwaps = MetricsRegistry::global().counter("serve.hot_swaps");
  uint64_t SwapsBefore = HotSwaps.value();

  // A client hammers sequential requests while the main thread swaps
  // the artifact table; every request must get a successful response.
  std::atomic<size_t> OkCount{0};
  std::atomic<bool> ClientFailed{false};
  constexpr size_t NumRequests = 60;
  std::thread Client([&] {
    TestClient C = TestClient::connectTo(Srv->port());
    for (size_t I = 0; I < NumRequests; ++I) {
      Json Response = C.roundTrip("{\"budget\": 10, \"id\": " +
                                  std::to_string(I) + "}");
      if (responseOk(Response))
        OkCount.fetch_add(1);
      else
        ClientFailed.store(true);
    }
  });
  for (int Swap = 0; Swap < 4; ++Swap) {
    EXPECT_EQ(Srv->hotSwap(), 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Client.join();
  EXPECT_EQ(OkCount.load(), NumRequests);
  EXPECT_FALSE(ClientFailed.load());
  EXPECT_EQ(HotSwaps.value(), SwapsBefore + 4);
  Srv->shutdown();
}

TEST_F(ServingTest, HotSwapKeepsServingWhenTheFileTurnsBad) {
  // Copy the artifact so the test can corrupt it without disturbing the
  // shared one, and disable the last-good cache so the reload genuinely
  // fails (with it on, rung 2 of the ladder would resurrect the bytes).
  std::string BadPath = tempPath("serving-hot-swap-bad.opprox.json");
  std::filesystem::copy_file(artifactPath(), BadPath,
                             std::filesystem::copy_options::overwrite_existing);
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.Load.UseLastGood = false;
  Opts.Load.Retry.MaxAttempts = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts, {{"", BadPath}});
  ASSERT_NE(Srv, nullptr);
  Counter &Failures =
      MetricsRegistry::global().counter("serve.hot_swap_failures");
  uint64_t FailuresBefore = Failures.value();

  ASSERT_FALSE(writeFile(BadPath, "{not an artifact").has_value());
  EXPECT_EQ(Srv->hotSwap(), 0u); // Nothing reloaded...
  EXPECT_EQ(Failures.value(), FailuresBefore + 1);

  // ...but the resident version keeps serving.
  TestClient C = TestClient::connectTo(Srv->port());
  EXPECT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));
}

TEST_F(ServingTest, DrainAnswersBufferedRequestsBeforeStopping) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);

  TestClient C = TestClient::connectTo(Srv->port());
  ASSERT_TRUE(C.sendLine("{\"budget\": 10, \"id\": \"drain\"}"));
  // Give loopback time to deliver, then drain: the shard's final pass
  // must answer what already arrived, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Srv->shutdown();

  std::optional<std::string> Line = C.recvLine();
  ASSERT_TRUE(Line.has_value()) << "request dropped during drain";
  Expected<Json> Doc = Json::parse(*Line);
  ASSERT_TRUE(static_cast<bool>(Doc));
  EXPECT_TRUE(responseOk(*Doc));
  EXPECT_FALSE(C.recvLine().has_value()) << "connection must close on drain";

  // shutdown() is idempotent; the destructor repeats it harmlessly.
  Srv->shutdown();
}

//===----------------------------------------------------------------------===//
// Hostile-client bounds and load shedding
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, OversizedRequestIsRefusedAndConnectionClosed) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.MaxRequestBytes = 128;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  Counter &Oversized = MetricsRegistry::global().counter("serve.oversized");
  uint64_t Before = Oversized.value();

  TestClient C = TestClient::connectTo(Srv->port());
  ASSERT_TRUE(C.sendLine(std::string(2000, 'a')));
  std::optional<std::string> Line = C.recvLine();
  ASSERT_TRUE(Line.has_value());
  Expected<Json> Doc = Json::parse(*Line);
  ASSERT_TRUE(static_cast<bool>(Doc));
  EXPECT_EQ(responseErrorCode(*Doc), "oversized");
  EXPECT_FALSE(C.recvLine().has_value()) << "connection must close";
  EXPECT_EQ(Oversized.value(), Before + 1);
}

TEST_F(ServingTest, IdleConnectionIsClosedAfterReadTimeout) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.ReadTimeoutMs = 100;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  Counter &Timeouts = MetricsRegistry::global().counter("serve.timeouts");
  uint64_t Before = Timeouts.value();

  TestClient C = TestClient::connectTo(Srv->port());
  // Send nothing: the server must close us, not wait forever.
  EXPECT_FALSE(C.recvLine().has_value());
  EXPECT_GE(Timeouts.value(), Before + 1);
}

TEST_F(ServingTest, PipelineBeyondQueueCapacityIsShedNotQueued) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.QueueCapacity = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);

  // One burst of pipelined requests far beyond the per-cycle budget:
  // every line still gets a response (ok or a structured `overloaded`),
  // nothing hangs, order is preserved.
  constexpr size_t Burst = 200;
  TestClient C = TestClient::connectTo(Srv->port());
  std::string Lines;
  for (size_t I = 0; I < Burst; ++I)
    Lines += "{\"budget\": 10, \"id\": " + std::to_string(I) + "}\n";
  ASSERT_FALSE(sendAll(C.Sock, Lines).has_value());

  size_t Ok = 0, Shed = 0, NextId = 0;
  for (size_t I = 0; I < Burst; ++I) {
    std::optional<std::string> Line = C.recvLine();
    ASSERT_TRUE(Line.has_value()) << "response " << I << " missing";
    Expected<Json> Doc = Json::parse(*Line);
    ASSERT_TRUE(static_cast<bool>(Doc));
    if (responseOk(*Doc)) {
      ++Ok;
      // Successful responses echo ids in request order.
      Expected<double> Id = getNumber(*Doc, "id");
      ASSERT_TRUE(static_cast<bool>(Id));
      EXPECT_GE(static_cast<size_t>(*Id), NextId);
      NextId = static_cast<size_t>(*Id) + 1;
    } else {
      ASSERT_EQ(responseErrorCode(*Doc), "overloaded") << *Line;
      ++Shed;
    }
  }
  EXPECT_EQ(Ok + Shed, Burst);
  EXPECT_GE(Ok, 1u);
  EXPECT_GE(Shed, 1u) << "a 200-deep pipeline against capacity 1 must shed";
}

TEST_F(ServingTest, ConnectionsBeyondCapacityAreShedWithAResponse) {
  ServeOptions Opts;
  Opts.Shards = 1;
  Opts.MaxConnectionsPerShard = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);

  TestClient First = TestClient::connectTo(Srv->port());
  EXPECT_TRUE(responseOk(First.roundTrip("{\"budget\": 10}")));

  // The shard is full: the acceptor answers and closes.
  TestClient Second = TestClient::connectTo(Srv->port());
  std::optional<std::string> Line = Second.recvLine();
  ASSERT_TRUE(Line.has_value());
  Expected<Json> Doc = Json::parse(*Line);
  ASSERT_TRUE(static_cast<bool>(Doc));
  EXPECT_EQ(responseErrorCode(*Doc), "overloaded");
  EXPECT_FALSE(Second.recvLine().has_value());

  // The admitted connection is unaffected.
  EXPECT_TRUE(responseOk(First.roundTrip("{\"budget\": 10}")));
}

//===----------------------------------------------------------------------===//
// Degradation over the wire
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, DegradedPhasesAreReportedPerResponse) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  // Healthy first: the baseline response reports zero degradations.
  Json Healthy = C.roundTrip("{\"budget\": 10}");
  ASSERT_TRUE(responseOk(Healthy));
  Expected<const Json *> Result = getObject(Healthy, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Expected<size_t> Degraded = getSize(**Result, "degraded_phases");
  ASSERT_TRUE(static_cast<bool>(Degraded));
  EXPECT_EQ(*Degraded, 0u);

  // Arm NaN predictions: rung 3 of the ladder serves exact
  // configurations per phase, and the count crosses the wire. A fresh
  // budget keys past the schedule cache (the healthy result above is
  // cached and would otherwise answer without touching the models).
  ASSERT_FALSE(FaultRegistry::global()
                   .configure("model.predict.nan:1.0:42")
                   .has_value());
  Json Faulty = C.roundTrip("{\"budget\": 12}");
  ASSERT_TRUE(responseOk(Faulty)) << "degradation must not fail the request";
  Result = getObject(Faulty, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Degraded = getSize(**Result, "degraded_phases");
  ASSERT_TRUE(static_cast<bool>(Degraded));
  EXPECT_GE(*Degraded, 1u);

  // Disarm: the same connection recovers to clean responses. Repeating
  // the faulty request's budget also proves the degraded result was not
  // cached -- a memoized fallback would outlive the fault.
  FaultRegistry::global().clear();
  Json Recovered = C.roundTrip("{\"budget\": 12}");
  ASSERT_TRUE(responseOk(Recovered));
  Result = getObject(Recovered, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Degraded = getSize(**Result, "degraded_phases");
  ASSERT_TRUE(static_cast<bool>(Degraded));
  EXPECT_EQ(*Degraded, 0u);
}

//===----------------------------------------------------------------------===//
// Schedule cache across the wire
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, StatsRequestReportsCacheCounters) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  uint64_t HitsBefore = MetricsRegistry::global().counter("cache.hits").value();

  // Identical requests: the first misses and computes, the repeats hit.
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));

  // The stats request waives the required budget and answers with the
  // counter snapshot instead of an optimization.
  Json Stats = C.roundTrip("{\"stats\": true, \"id\": 99}");
  ASSERT_TRUE(responseOk(Stats));
  Expected<const Json *> Result = getObject(Stats, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Expected<const Json *> Cache = getObject(**Result, "cache");
  ASSERT_TRUE(static_cast<bool>(Cache));
  Expected<size_t> Hits = getSize(**Cache, "hits");
  ASSERT_TRUE(static_cast<bool>(Hits));
  EXPECT_GE(*Hits, HitsBefore + 2)
      << "two repeats of a cached request must be two hits";
  EXPECT_TRUE(static_cast<bool>(getSize(**Cache, "misses")));
  EXPECT_TRUE(static_cast<bool>(getSize(**Cache, "negative_hits")));
  EXPECT_TRUE(static_cast<bool>(getSize(**Cache, "evictions")));
  EXPECT_TRUE(static_cast<bool>(getSize(**Cache, "grid_hits")));
}

//===----------------------------------------------------------------------===//
// Live probes: {"stats": true} / {"stats": "delta"} / {"health": true}
// (docs/OBSERVABILITY.md, "Live probes")
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, StatsProbeReturnsTheFullMetricsSnapshot) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));

  Json Stats = C.roundTrip("{\"stats\": true, \"id\": \"s\"}");
  ASSERT_TRUE(responseOk(Stats));
  Expected<const Json *> Result = getObject(Stats, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  // Same document --metrics-out writes, plus the legacy cache rollup.
  Expected<std::string> Schema = getString(**Result, "schema");
  ASSERT_TRUE(static_cast<bool>(Schema));
  EXPECT_EQ(*Schema, "opprox-metrics-1");
  EXPECT_TRUE(static_cast<bool>(getObject(**Result, "counters")));
  EXPECT_TRUE(static_cast<bool>(getObject(**Result, "gauges")));
  EXPECT_TRUE(static_cast<bool>(getObject(**Result, "cache")));
  Expected<const Json *> Hists = getObject(**Result, "histograms");
  ASSERT_TRUE(static_cast<bool>(Hists));
  EXPECT_TRUE((*Hists)->find("serve.request_ms"));
  for (const char *Stage :
       {"parse", "plan", "lookup", "compute", "serialize"})
    EXPECT_TRUE((*Hists)->find(std::string("serve.stage_ms.") + Stage))
        << Stage;
}

TEST_F(ServingTest, HealthProbeReportsServerFactsAndWindowedRates) {
  ServeOptions Opts;
  Opts.Shards = 2;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));

  Json First = C.roundTrip("{\"health\": true}");
  ASSERT_TRUE(responseOk(First));
  Expected<const Json *> Result = getObject(First, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Expected<const Json *> Health = getObject(**Result, "health");
  ASSERT_TRUE(static_cast<bool>(Health));

  Expected<std::string> Status = getString(**Health, "status");
  ASSERT_TRUE(static_cast<bool>(Status));
  EXPECT_EQ(*Status, "ok");
  Expected<double> Uptime = getNumber(**Health, "uptime_s");
  ASSERT_TRUE(static_cast<bool>(Uptime));
  EXPECT_GT(*Uptime, 0.0);
  Expected<size_t> Generation = getSize(**Health, "artifact_generation");
  ASSERT_TRUE(static_cast<bool>(Generation));
  EXPECT_EQ(*Generation, 0u);
  Expected<size_t> Shards = getSize(**Health, "shards");
  ASSERT_TRUE(static_cast<bool>(Shards));
  EXPECT_EQ(*Shards, 2u);
  Expected<const Json *> Conns = getObject(**Health, "connections");
  ASSERT_TRUE(static_cast<bool>(Conns));
  Expected<size_t> Capacity = getSize(**Conns, "capacity");
  ASSERT_TRUE(static_cast<bool>(Capacity));
  EXPECT_EQ(*Capacity, 2 * Opts.MaxConnectionsPerShard);
  Expected<const Json *> Window = getObject(**Health, "window");
  ASSERT_TRUE(static_cast<bool>(Window));
  Expected<size_t> Requests = getSize(**Window, "requests");
  ASSERT_TRUE(static_cast<bool>(Requests));
  EXPECT_EQ(*Requests, 3u);
  EXPECT_TRUE(static_cast<bool>(getNumber(**Window, "shed_rate")));

  // Health windows are relative to the previous health probe: a quiet
  // gap reports zero requests. And hot swaps bump the generation.
  Srv->hotSwap();
  Json Second = C.roundTrip("{\"health\": true}");
  ASSERT_TRUE(responseOk(Second));
  Expected<const Json *> Result2 = getObject(Second, "result");
  ASSERT_TRUE(static_cast<bool>(Result2));
  Expected<const Json *> Health2 = getObject(**Result2, "health");
  ASSERT_TRUE(static_cast<bool>(Health2));
  Expected<size_t> Generation2 = getSize(**Health2, "artifact_generation");
  ASSERT_TRUE(static_cast<bool>(Generation2));
  EXPECT_EQ(*Generation2, 1u);
  Expected<const Json *> Window2 = getObject(**Health2, "window");
  ASSERT_TRUE(static_cast<bool>(Window2));
  Expected<size_t> Requests2 = getSize(**Window2, "requests");
  ASSERT_TRUE(static_cast<bool>(Requests2));
  EXPECT_EQ(*Requests2, 0u);
}

TEST_F(ServingTest, DeltaProbeWindowsAreGaplessAndPerServer) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));
  Json First = C.roundTrip("{\"stats\": \"delta\"}");
  ASSERT_TRUE(responseOk(First));
  Expected<const Json *> Result = getObject(First, "result");
  ASSERT_TRUE(static_cast<bool>(Result));
  Expected<std::string> Schema = getString(**Result, "schema");
  ASSERT_TRUE(static_cast<bool>(Schema));
  EXPECT_EQ(*Schema, "opprox-metrics-delta-1");
  Expected<const Json *> Counters = getObject(**Result, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters));
  Expected<double> Requests = getNumber(**Counters, "serve.requests");
  ASSERT_TRUE(static_cast<bool>(Requests));
  EXPECT_DOUBLE_EQ(*Requests, 5.0)
      << "the first delta window starts at server construction";

  // The next window carries only the traffic since the previous delta
  // probe -- and the probes themselves never count as requests.
  for (int I = 0; I < 2; ++I)
    ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));
  Json Second = C.roundTrip("{\"stats\": \"delta\"}");
  ASSERT_TRUE(responseOk(Second));
  Expected<const Json *> Result2 = getObject(Second, "result");
  ASSERT_TRUE(static_cast<bool>(Result2));
  Expected<const Json *> Counters2 = getObject(**Result2, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters2));
  Expected<double> Requests2 = getNumber(**Counters2, "serve.requests");
  ASSERT_TRUE(static_cast<bool>(Requests2));
  EXPECT_DOUBLE_EQ(*Requests2, 2.0);
}

TEST_F(ServingTest, ProbesAreCountedAsProbesNotRequests) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  MetricsRegistry &Reg = MetricsRegistry::global();
  uint64_t SerializeBefore =
      Reg.histogram("serve.stage_ms.serialize", Histogram::stageBoundsMs())
          .count();
  ASSERT_TRUE(responseOk(C.roundTrip("{\"budget\": 10}")));
  // The shard records instruments after writing the response; wait for
  // the optimize request's records to land before taking the baseline.
  for (int Spin = 0;
       Reg.histogram("serve.stage_ms.serialize").count() <
           SerializeBefore + 1 &&
       Spin < 1000;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  uint64_t RequestsBefore = Reg.counter("serve.requests").value();
  uint64_t ProbesBefore = Reg.counter("serve.probes").value();
  uint64_t LatencyCountBefore =
      Reg.histogram("serve.request_ms").count();

  ASSERT_TRUE(responseOk(C.roundTrip("{\"stats\": true}")));
  ASSERT_TRUE(responseOk(C.roundTrip("{\"stats\": \"delta\"}")));
  ASSERT_TRUE(responseOk(C.roundTrip("{\"health\": true}")));

  // Monitoring must not pollute the latency the SLO is written against.
  EXPECT_EQ(Reg.counter("serve.requests").value(), RequestsBefore);
  EXPECT_EQ(Reg.histogram("serve.request_ms").count(), LatencyCountBefore);
  EXPECT_EQ(Reg.counter("serve.probes").value(), ProbesBefore + 3);
}

TEST_F(ServingTest, StageAttributionSumsToRequestLatency) {
  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts);
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  MetricsRegistry &Reg = MetricsRegistry::global();
  const char *StageNames[] = {
      "serve.stage_ms.parse", "serve.stage_ms.plan", "serve.stage_ms.lookup",
      "serve.stage_ms.compute", "serve.stage_ms.serialize"};
  double StageSumBefore = 0.0;
  for (const char *Name : StageNames)
    StageSumBefore += Reg.histogram(Name, Histogram::stageBoundsMs()).sum();
  double RequestSumBefore = Reg.histogram("serve.request_ms").sum();
  uint64_t CountBefore = Reg.histogram("serve.request_ms").count();
  uint64_t SerializeCountBefore =
      Reg.histogram("serve.stage_ms.serialize").count();

  // A mix of misses, cache hits, and error responses: the attribution
  // invariant holds for every outcome, not just the happy path.
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(responseOk(
        C.roundTrip(format("{\"budget\": %d}", 5 + I % 3))));
  EXPECT_FALSE(responseOk(C.roundTrip("{\"budget\": -1}")));
  EXPECT_FALSE(responseOk(C.roundTrip("{broken")));

  // The shard records the histograms *after* writing the response (the
  // serialize stage covers the socket write), so wait for the last
  // stage record of the last request before reading the sums.
  for (int Spin = 0;
       Reg.histogram("serve.stage_ms.serialize").count() <
           SerializeCountBefore + 10 &&
       Spin < 1000;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  double StageSum = -StageSumBefore;
  for (const char *Name : StageNames)
    StageSum += Reg.histogram(Name).sum();
  double RequestSum = Reg.histogram("serve.request_ms").sum() -
                      RequestSumBefore;
  uint64_t Count = Reg.histogram("serve.request_ms").count() - CountBefore;
  EXPECT_EQ(Count, 10u);
  ASSERT_GT(RequestSum, 0.0);
  // The acceptance bar: the five stages account for the request clock
  // to within 5% (by construction they partition it exactly; the
  // tolerance absorbs histogram float accumulation).
  EXPECT_NEAR(StageSum, RequestSum, 0.05 * RequestSum);
}

//===----------------------------------------------------------------------===//
// Slow-request sampler determinism
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> runSampler(size_t Window, size_t TopN, uint64_t Seed,
                                    size_t Shard, size_t Requests) {
  std::vector<std::string> Lines;
  SlowRequestSampler Sampler(Window, TopN, Seed, Shard,
                             [&Lines](const std::string &Line) {
                               Lines.push_back(Line);
                             });
  for (size_t I = 0; I < Requests; ++I) {
    StageSample S;
    S.Id = std::to_string(I);
    // A deterministic sawtooth with one large spike per window.
    S.TotalMs = (I % 7 == 3) ? 50.0 + static_cast<double>(I)
                             : 1.0 + static_cast<double>(I % 5);
    S.ParseMs = 0.25 * S.TotalMs;
    S.PlanMs = 0.25 * S.TotalMs;
    S.SerializeMs = 0.5 * S.TotalMs;
    Sampler.observe(S);
  }
  return Lines;
}

} // namespace

TEST(SlowRequestSamplerTest, ReplaysIdenticallyForTheSameSeedAndShard) {
  std::vector<std::string> A = runSampler(16, 3, 42, 0, 64);
  std::vector<std::string> B = runSampler(16, 3, 42, 0, 64);
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "same (seed, shard, stream) must log the same lines";

  // Per window: TopN slow-request lines plus one spotlight sample.
  EXPECT_EQ(A.size(), (64 / 16) * (3 + 1));
  size_t Slow = 0, Spot = 0;
  for (const std::string &Line : A) {
    if (Line.find("slow-request") != std::string::npos)
      ++Slow;
    if (Line.find("sample-request") != std::string::npos)
      ++Spot;
    EXPECT_NE(Line.find("total_ms="), std::string::npos) << Line;
    EXPECT_NE(Line.find("parse_ms="), std::string::npos) << Line;
  }
  EXPECT_EQ(Slow, (64 / 16) * 3);
  EXPECT_EQ(Spot, 64 / 16);
}

TEST(SlowRequestSamplerTest, ShardsWithTheSameSeedDivergeAndRanksAreSorted) {
  std::vector<std::string> Shard0 = runSampler(16, 2, 7, 0, 32);
  std::vector<std::string> Shard1 = runSampler(16, 2, 7, 1, 32);
  // The slowest requests agree (same stream) but the spotlight picks
  // must not march in lockstep across shards.
  EXPECT_NE(Shard0, Shard1);

  // rank=1 is the slowest of its window: ranks never increase in speed.
  auto TotalOf = [](const std::string &Line) {
    size_t At = Line.find("total_ms=");
    return std::stod(Line.substr(At + 9));
  };
  double Rank1 = 0.0;
  for (const std::string &Line : Shard0) {
    if (Line.find("rank=1/") != std::string::npos)
      Rank1 = TotalOf(Line);
    else if (Line.find("rank=2/") != std::string::npos)
      EXPECT_LE(TotalOf(Line), Rank1) << Line;
  }
}

TEST(SlowRequestSamplerTest, DisabledSamplerNeverEmits) {
  EXPECT_TRUE(runSampler(0, 3, 42, 0, 64).empty());
  std::vector<std::string> NoTop = runSampler(8, 0, 42, 0, 64);
  EXPECT_TRUE(NoTop.empty());
}

TEST_F(ServingTest, HotSwapDoesNotServeCachedSchedulesFromTheOldArtifact) {
  // Two deliberately different trainings of the same application: the
  // swap must change what the server answers, and the pre-swap cache
  // must not leak the old model's schedules past the swap.
  auto App = createApp("pso");
  OpproxTrainOptions OptsA;
  OptsA.Profiling.RandomJointSamples = 6;
  OptsA.TrainingInputs = {{30, 5}, {45, 6}};
  OpproxArtifact ArtA = OfflineTrainer::train(*App, OptsA).Artifact;
  OpproxTrainOptions OptsB;
  OptsB.Profiling.RandomJointSamples = 14;
  OptsB.Profiling.Seed = 0x5EED5;
  OptsB.TrainingInputs = {{24, 4}, {60, 8}};
  OpproxArtifact ArtB = OfflineTrainer::train(*App, OptsB).Artifact;

  const std::vector<double> Budgets = {2.0, 10.0, 25.0};
  const std::vector<double> &Input = ArtA.DefaultInput;
  const OptimizeOptions ServerDefaults; // What the server runs per request.

  // The expected post-swap responses, computed locally from artifact B
  // (the serving suite already proves server responses are byte-equal
  // to local documents for one artifact; here that pins down *which*
  // artifact answered).
  OpproxRuntime RtA = OpproxRuntime::fromArtifact(ArtA);
  OpproxRuntime RtB = OpproxRuntime::fromArtifact(ArtB);
  std::vector<std::string> DocsA, DocsB;
  for (double Budget : Budgets) {
    DocsA.push_back(optimizationResultJson(
                        RtA.artifact(), Budget, Input,
                        RtA.optimizeDetailed(Input, Budget, ServerDefaults))
                        .dump());
    DocsB.push_back(optimizationResultJson(
                        RtB.artifact(), Budget, Input,
                        RtB.optimizeDetailed(Input, Budget, ServerDefaults))
                        .dump());
  }
  // The swap must be observable, or this test could not catch a stale
  // cache; the trainings above are different enough that at least one
  // budget decides differently (both sides are deterministic).
  ASSERT_NE(DocsA, DocsB)
      << "test artifacts must disagree on at least one budget";

  std::string Path = tempPath("serving-hot-swap-cache.opprox.json");
  ASSERT_FALSE(ArtA.save(Path).has_value());

  ServeOptions Opts;
  Opts.Shards = 1;
  std::unique_ptr<Server> Srv = startTestServer(Opts, {{"", Path}});
  ASSERT_NE(Srv, nullptr);
  TestClient C = TestClient::connectTo(Srv->port());

  // Warm the cache: every budget twice, so the second answer of each is
  // served from the cache keyed under artifact A.
  for (int Round = 0; Round < 2; ++Round)
    for (size_t I = 0; I < Budgets.size(); ++I) {
      Json Response =
          C.roundTrip(format("{\"budget\": %g}", Budgets[I]));
      ASSERT_TRUE(responseOk(Response));
      Expected<const Json *> Result = getObject(Response, "result");
      ASSERT_TRUE(static_cast<bool>(Result));
      EXPECT_EQ((*Result)->dump(), DocsA[I]);
    }

  ASSERT_FALSE(ArtB.save(Path).has_value());
  EXPECT_EQ(Srv->hotSwap(), 1u);

  // Every post-swap answer must come from artifact B's model -- byte for
  // byte -- even though the same (budget, input) keys were cached hot
  // moments ago under artifact A.
  for (size_t I = 0; I < Budgets.size(); ++I) {
    Json Response = C.roundTrip(format("{\"budget\": %g}", Budgets[I]));
    ASSERT_TRUE(responseOk(Response));
    Expected<const Json *> Result = getObject(Response, "result");
    ASSERT_TRUE(static_cast<bool>(Result));
    EXPECT_EQ((*Result)->dump(), DocsB[I])
        << "budget " << Budgets[I]
        << ": response does not match the swapped-in artifact";
  }
}
