//===- tests/OptimizerEquivalenceTests.cpp - Hot-path bit-identity --------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched+pruned+parallel optimizer engine must return decisions
/// bit-identical to the retained naive scalar reference for every
/// combination of budget, confidence mode, pruning, batch/chunk
/// geometry, and worker count. The scalar reference assembles features
/// per call through SelectedModel::predict while the serving engine
/// uses the batch kernels and memoized eval-plan tables, so these tests
/// compare two genuinely independent implementations.
///
//===----------------------------------------------------------------------===//

#include "core/BudgetGrid.h"
#include "core/OpproxRuntime.h"
#include "core/OptimizePlanner.h"
#include "core/Optimizer.h"
#include "core/Sampler.h"
#include "serve/Server.h"
#include "serve/WireProtocol.h"
#include "support/Json.h"
#include "support/Simd.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <atomic>
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <thread>

using namespace opprox;

namespace {

/// Exact bit equality, stricter than ==: distinguishes -0.0 from 0.0 and
/// would catch a NaN that compares unequal to itself.
bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Synthetic ground truth with block interactions; mirrors (at a smaller
/// scale) the generator in bench/micro_optimizer.cpp.
double trueSpeedup(const std::vector<int> &Levels, size_t Phase) {
  double S = 1.0;
  for (size_t B = 0; B < Levels.size(); ++B)
    S *= 1.0 + 0.06 * (1.0 + 0.5 * static_cast<double>(Phase)) *
                   (1.0 + 0.3 * static_cast<double>(B)) *
                   static_cast<double>(Levels[B]);
  return S;
}

double trueQos(const std::vector<int> &Levels, size_t Phase) {
  double Q = 0.0;
  for (size_t B = 0; B < Levels.size(); ++B) {
    double L = static_cast<double>(Levels[B]);
    Q += 0.02 * (1.0 + 0.4 * static_cast<double>(Phase)) *
         (1.0 + 0.2 * static_cast<double>(B)) * L * L;
  }
  return Q;
}

/// Trains a small model stack (NumBlocks x max level 2, NumPhases) on
/// noisy synthetic data; \p Seed varies both the sampling and the noise,
/// so distinct seeds give genuinely different fitted models.
AppModel makeModel(size_t NumBlocks, size_t NumPhases, uint64_t Seed) {
  std::vector<int> MaxLevels(NumBlocks, 2);
  TrainingSet Set;
  Rng R(Seed);
  for (double In : {1.0, 2.0, 3.0}) {
    for (size_t Phase = 0; Phase < NumPhases; ++Phase) {
      SamplingPlan Plan = makeSamplingPlan(MaxLevels, 20, R);
      Plan.forEach([&](const std::vector<int> &Levels) {
        TrainingSample S;
        S.Input = {In};
        S.Levels = Levels;
        S.Phase = static_cast<int>(Phase);
        S.Speedup =
            trueSpeedup(Levels, Phase) * (1.0 + R.gaussian(0.0, 0.01));
        S.QosDegradation = std::max(
            0.0, trueQos(Levels, Phase) * (1.0 + R.gaussian(0.0, 0.02)));
        S.OuterIterations =
            80.0 + 3.0 * static_cast<double>(Levels[0] + Levels.back());
        S.ControlFlowClass = 0;
        Set.add(std::move(S));
      });
    }
  }
  ModelBuildOptions Opts;
  Opts.NumThreads = 1;
  Opts.Seed = Seed;
  return ModelBuilder::build(Set, NumPhases, NumBlocks, Opts);
}

void expectSameDecisions(const OptimizationResult &Ref,
                         const OptimizationResult &Got,
                         const std::string &What) {
  ASSERT_EQ(Ref.Decisions.size(), Got.Decisions.size()) << What;
  for (size_t P = 0; P < Ref.Decisions.size(); ++P) {
    const PhaseDecision &A = Ref.Decisions[P];
    const PhaseDecision &B = Got.Decisions[P];
    EXPECT_EQ(A.Levels, B.Levels) << What << ", phase " << P;
    EXPECT_TRUE(bitEqual(A.PredictedSpeedup, B.PredictedSpeedup))
        << What << ", phase " << P << ": speedup " << A.PredictedSpeedup
        << " vs " << B.PredictedSpeedup;
    EXPECT_TRUE(bitEqual(A.PredictedQos, B.PredictedQos))
        << What << ", phase " << P << ": qos " << A.PredictedQos << " vs "
        << B.PredictedQos;
    EXPECT_TRUE(bitEqual(A.AllocatedBudget, B.AllocatedBudget))
        << What << ", phase " << P;
  }
  EXPECT_EQ(Ref.ConfigsEvaluated, Got.ConfigsEvaluated) << What;
}

/// Shared models: training is the expensive part, so build one small
/// stack per seed and reuse it across every test in this file.
const AppModel &modelA() {
  static AppModel M = makeModel(/*NumBlocks=*/4, /*NumPhases=*/2, 0xA11CE);
  return M;
}
const AppModel &modelB() {
  static AppModel M = makeModel(/*NumBlocks=*/3, /*NumPhases=*/3, 0xB0B);
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Batched engine vs the naive reference
//===----------------------------------------------------------------------===//

TEST(OptimizerEquivalenceTest, MatchesNaiveAcrossBudgetsAndModes) {
  const std::vector<double> Input = {2.0};
  for (const AppModel *Model : {&modelA(), &modelB()}) {
    std::vector<int> MaxLevels(Model->numBlocks(), 2);
    for (double Budget : {0.0, 0.02, 0.1, 0.5, 5.0}) {
      for (bool Conservative : {true, false}) {
        OptimizeOptions Naive;
        Naive.UseNaiveScan = true;
        Naive.Conservative = Conservative;
        OptimizationResult Ref =
            optimizeSchedule(*Model, Input, MaxLevels, Budget, Naive);

        OptimizeOptions Batched;
        Batched.Conservative = Conservative;
        OptimizationResult Got =
            optimizeSchedule(*Model, Input, MaxLevels, Budget, Batched);
        expectSameDecisions(
            Ref, Got,
            "budget " + std::to_string(Budget) +
                (Conservative ? ", conservative" : ", plain"));
      }
    }
  }
}

TEST(OptimizerEquivalenceTest, BatchAndChunkGeometryIrrelevant) {
  const std::vector<double> Input = {1.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  OptimizeOptions Naive;
  Naive.UseNaiveScan = true;
  OptimizationResult Ref =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.3, Naive);

  // ChunkSize 0 is the auto-sizing default: the geometry then depends on
  // the resolved executor count, which must stay decision-irrelevant.
  for (size_t BatchSize : {1u, 3u, 17u, 4096u}) {
    for (size_t ChunkSize : {0u, 1u, 5u, 29u, 1000000u}) {
      for (bool Prune : {true, false}) {
        OptimizeOptions Opts;
        Opts.BatchSize = BatchSize;
        Opts.ChunkSize = ChunkSize;
        Opts.Prune = Prune;
        OptimizationResult Got =
            optimizeSchedule(modelA(), Input, MaxLevels, 0.3, Opts);
        expectSameDecisions(Ref, Got,
                            "batch " + std::to_string(BatchSize) +
                                ", chunk " + std::to_string(ChunkSize) +
                                ", prune " + std::to_string(Prune));
      }
    }
  }
}

TEST(OptimizerEquivalenceTest, SearchStatsPartitionTheSpace) {
  const std::vector<double> Input = {2.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  size_t SpacePerPhase = 81; // 3^4.
  size_t NumPhases = modelA().numPhases();

  OptimizeOptions NoPrune;
  NoPrune.Prune = false;
  OptimizationResult Full =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.1, NoPrune);
  EXPECT_EQ(Full.ConfigsEvaluated, SpacePerPhase * NumPhases);
  EXPECT_EQ(Full.ConfigsPruned, 0u);
  // Everything except the per-phase all-exact baseline is scored.
  EXPECT_EQ(Full.ConfigsScored, (SpacePerPhase - 1) * NumPhases);

  OptimizeOptions Pruned;
  OptimizationResult P =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.1, Pruned);
  // Scored + pruned + the skipped baselines account for every config.
  EXPECT_EQ(P.ConfigsScored + P.ConfigsPruned + NumPhases,
            P.ConfigsEvaluated);
  EXPECT_EQ(P.ConfigsEvaluated, SpacePerPhase * NumPhases);
}

TEST(OptimizerEquivalenceTest, NegativeOrNanBudgetFailsLoudly) {
  const std::vector<double> Input = {1.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  OptimizeOptions Opts;
  EXPECT_DEATH(optimizeSchedule(modelA(), Input, MaxLevels, -0.5, Opts),
               "non-negative");
  EXPECT_DEATH(optimizeSchedule(modelA(), Input, MaxLevels,
                                std::nan(""), Opts),
               "non-negative");
}

TEST(OptimizerEquivalenceTest, ZeroBatchSizeFailsLoudly) {
  // BatchSize 0 has no auto meaning (unlike ChunkSize 0) and used to be
  // silent divide-by-zero territory in the chunk math; it must die with
  // the canonical diagnostic instead.
  const std::vector<double> Input = {1.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  OptimizeOptions Opts;
  Opts.BatchSize = 0;
  EXPECT_DEATH(optimizeSchedule(modelA(), Input, MaxLevels, 0.3, Opts),
               "must be positive");
}

//===----------------------------------------------------------------------===//
// PhaseModels batch kernels vs the scalar predicts
//===----------------------------------------------------------------------===//

TEST(OptimizerEquivalenceTest, BatchPredictionsMatchScalarBitwise) {
  const std::vector<double> Input = {3.0};
  std::vector<int> MaxLevels(modelB().numBlocks(), 2);
  for (size_t Phase = 0; Phase < modelB().numPhases(); ++Phase) {
    const PhaseModels &PM = modelB().phaseModels(Input, Phase);
    for (bool Conservative : {true, false}) {
      PhaseEvalPlan Plan =
          PM.makeEvalPlan(Input, MaxLevels, Conservative, 0.99);
      PredictScratch Scratch;

      // Every configuration of the space in one batch.
      std::vector<int> Rows;
      std::vector<std::vector<int>> Configs;
      for (ConfigCursor C(MaxLevels); !C.done(); C.next()) {
        Rows.insert(Rows.end(), C.levels().begin(), C.levels().end());
        Configs.push_back(C.levels());
      }
      size_t N = Configs.size();
      std::vector<double> Iter, Qos, Speedup;
      PM.predictIterationsBatch(Plan, Rows.data(), N, Iter, Scratch);
      PM.predictQosBatch(Plan, Rows.data(), N, Qos, Scratch);
      PM.predictSpeedupBatch(Plan, Rows.data(), N, Speedup, Scratch);

      for (size_t I = 0; I < N; ++I) {
        EXPECT_TRUE(bitEqual(Iter[I],
                             PM.predictIterations(Input, Configs[I])))
            << "iterations, row " << I;
        double ScalarQos =
            Conservative ? PM.conservativeQos(Input, Configs[I], 0.99)
                         : PM.predictQos(Input, Configs[I]);
        EXPECT_TRUE(bitEqual(Qos[I], ScalarQos)) << "qos, row " << I;
        double ScalarSpeedup =
            Conservative
                ? PM.conservativeSpeedup(Input, Configs[I], 0.99)
                : PM.predictSpeedup(Input, Configs[I]);
        EXPECT_TRUE(bitEqual(Speedup[I], ScalarSpeedup))
            << "speedup, row " << I;
      }
    }
  }
}

TEST(OptimizerEquivalenceTest, QosFloorNeverExceedsAnyMemberConfig) {
  // The certified floor must lower-bound the (conservative) QoS of every
  // configuration that pins the (block, level) it covers; otherwise
  // pruning could discard a feasible configuration.
  const std::vector<double> Input = {2.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  for (size_t Phase = 0; Phase < modelA().numPhases(); ++Phase) {
    const PhaseModels &PM = modelA().phaseModels(Input, Phase);
    for (bool Conservative : {true, false}) {
      PhaseEvalPlan Plan =
          PM.makeEvalPlan(Input, MaxLevels, Conservative, 0.99);
      for (ConfigCursor C(MaxLevels); !C.done(); C.next()) {
        double Qos =
            Conservative ? PM.conservativeQos(Input, C.levels(), 0.99)
                         : PM.predictQos(Input, C.levels());
        for (size_t B = 0; B < MaxLevels.size(); ++B) {
          double Floor =
              Plan.QosFloor[B][static_cast<size_t>(C.levels()[B])];
          EXPECT_LE(Floor, Qos)
              << "phase " << Phase << ", config index " << C.index()
              << ", block " << B;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel scan (suite runs under TSan in CI; see .github/workflows)
//===----------------------------------------------------------------------===//

TEST(OptimizerParallelTest, AllThreadCountsMatchSerialBitwise) {
  const std::vector<double> Input = {2.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  OptimizeOptions Naive;
  Naive.UseNaiveScan = true;
  OptimizationResult Ref =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.25, Naive);

  for (size_t Threads : {1u, 2u, 5u}) {
    OptimizeOptions Opts;
    Opts.NumThreads = Threads;
    Opts.ChunkSize = 7; // Many chunks, so the fan-out actually happens.
    OptimizationResult Got =
        optimizeSchedule(modelA(), Input, MaxLevels, 0.25, Opts);
    expectSameDecisions(Ref, Got,
                        "threads " + std::to_string(Threads));
  }
}

TEST(OptimizerParallelTest, ExternalPoolMatchesSerialBitwise) {
  const std::vector<double> Input = {1.0};
  std::vector<int> MaxLevels(modelB().numBlocks(), 2);
  OptimizeOptions Naive;
  Naive.UseNaiveScan = true;
  OptimizationResult Ref =
      optimizeSchedule(modelB(), Input, MaxLevels, 0.4, Naive);

  ThreadPool Pool(3);
  OptimizeOptions Opts;
  Opts.Pool = &Pool;
  Opts.ChunkSize = 5;
  for (int Repeat = 0; Repeat < 3; ++Repeat) {
    OptimizationResult Got =
        optimizeSchedule(modelB(), Input, MaxLevels, 0.4, Opts);
    expectSameDecisions(Ref, Got,
                        "pool repeat " + std::to_string(Repeat));
  }
}

TEST(OptimizerParallelTest, ThreadScalingDeterministicWithAutoChunks) {
  // The bench's scaling sweep as a test: auto chunk sizing (ChunkSize 0,
  // the default) makes the chunk geometry a function of the executor
  // count, so this is the case where worker count could most plausibly
  // leak into decisions or stats. It must not: every thread count
  // returns the naive reference bitwise, and the search stats partition
  // the space identically at every point.
  const std::vector<double> Input = {2.0};
  std::vector<int> MaxLevels(modelA().numBlocks(), 2);
  size_t Space = 81 * modelA().numPhases(); // 3^4 per phase.
  OptimizeOptions Naive;
  Naive.UseNaiveScan = true;
  OptimizationResult Ref =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.25, Naive);

  OptimizeOptions Serial; // Batched, pruned, auto chunking, 1 executor.
  OptimizationResult Base =
      optimizeSchedule(modelA(), Input, MaxLevels, 0.25, Serial);
  expectSameDecisions(Ref, Base, "serial auto-chunk");
  EXPECT_EQ(Base.ConfigsEvaluated, Space);
  EXPECT_EQ(Base.ConfigsScored + Base.ConfigsPruned + modelA().numPhases(),
            Base.ConfigsEvaluated);

  for (size_t Threads : {1u, 2u, 4u, 8u}) {
    OptimizeOptions Opts;
    Opts.NumThreads = Threads;
    OptimizationResult Got =
        optimizeSchedule(modelA(), Input, MaxLevels, 0.25, Opts);
    std::string What = "auto chunks, threads " + std::to_string(Threads);
    expectSameDecisions(Ref, Got, What);
    // Stats are chunking-invariant, not just decision-invariant: a
    // subtree clipped at a chunk boundary is re-pruned from the next
    // chunk's start, so the scored/pruned split cannot depend on where
    // the executor count put the boundaries.
    EXPECT_EQ(Got.ConfigsScored, Base.ConfigsScored) << What;
    EXPECT_EQ(Got.ConfigsPruned, Base.ConfigsPruned) << What;
    EXPECT_EQ(Got.ConfigsScored + Got.ConfigsPruned + modelA().numPhases(),
              Got.ConfigsEvaluated)
        << What;
  }
}

TEST(OptimizerParallelTest, SimdTierIsDecisionIrrelevant) {
  // Forcing the generic kernels must not move a single bit of any
  // decision relative to the host's best tier. On hosts without a
  // vector tier this degenerates to generic-vs-generic, which is still
  // a valid (if vacuous) check -- the CI AVX2 leg carries the real
  // comparison.
  const std::vector<double> Input = {2.0};
  const simd::Tier Original = simd::activeTier();
  for (const AppModel *Model : {&modelA(), &modelB()}) {
    std::vector<int> MaxLevels(Model->numBlocks(), 2);
    for (double Budget : {0.05, 0.3, 2.0}) {
      OptimizeOptions Opts;
      ASSERT_EQ(simd::setActiveTier(simd::Tier::Generic),
                simd::Tier::Generic);
      OptimizationResult GenericR =
          optimizeSchedule(*Model, Input, MaxLevels, Budget, Opts);
      simd::setActiveTier(Original);
      OptimizationResult BestR =
          optimizeSchedule(*Model, Input, MaxLevels, Budget, Opts);
      expectSameDecisions(GenericR, BestR,
                          std::string("tier ") + simd::tierName(Original) +
                              ", budget " + std::to_string(Budget));
    }
  }
  simd::setActiveTier(Original);
}

//===----------------------------------------------------------------------===//
// Serving tier vs the local CLI document
//===----------------------------------------------------------------------===//

namespace {

/// Reads one newline-terminated response from \p Sock.
std::optional<std::string> recvResponseLine(const Socket &Sock,
                                            LineFramer &Framer) {
  std::string Line, Chunk;
  while (!Framer.next(Line)) {
    Chunk.clear();
    RecvResult R = recvSome(Sock, Chunk);
    if (R.Status != IoStatus::Ok || !Framer.feed(Chunk.data(), Chunk.size()))
      return std::nullopt;
  }
  return Line;
}

} // namespace

TEST(OptimizerEquivalenceTest, ServerResponsesMatchLocalDocumentBitwise) {
  // The acceptance bar for the serving tier: the "result" member of a
  // wire response is byte-identical to the document `opprox-optimize
  // --json` prints for the same artifact and request. Both sides load
  // the same file and share optimizationResultJson(), so any divergence
  // here means the server changed the math or the serialization.
  OpproxArtifact Art;
  Art.AppName = "equivalence";
  Art.ParameterNames = {"n"};
  Art.MaxLevels = std::vector<int>(modelA().numBlocks(), 2);
  Art.DefaultInput = {2.0};
  Art.Model = modelA();
  std::string Path = ::testing::TempDir() + "/equivalence.opprox.json";
  ASSERT_FALSE(Art.save(Path).has_value());

  Expected<OpproxRuntime> Local = OpproxRuntime::load(Path);
  ASSERT_TRUE(static_cast<bool>(Local)) << Local.error().message();

  serve::ServeOptions ServeOpts;
  ServeOpts.Shards = 2;
  Expected<std::unique_ptr<serve::Server>> Srv =
      serve::Server::start({{"", Path}}, ServeOpts);
  ASSERT_TRUE(static_cast<bool>(Srv)) << Srv.error().message();

  Expected<Socket> Sock = connectTcp("127.0.0.1", (*Srv)->port());
  ASSERT_TRUE(static_cast<bool>(Sock)) << Sock.error().message();
  ASSERT_FALSE(setRecvTimeoutMs(*Sock, 10000).has_value());
  LineFramer Framer(1 << 20);

  const std::vector<double> Input = {2.0};
  const double Confidence = 0.97;
  for (double Budget : {0.02, 0.1, 0.5, 5.0}) {
    for (bool Aggressive : {false, true}) {
      OptimizeOptions Opts;
      Opts.ConfidenceP = Confidence;
      Opts.Conservative = !Aggressive;
      Expected<OptimizationResult> R =
          Local->tryOptimizeDetailed(Input, Budget, Opts);
      ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
      std::string LocalDoc =
          serve::optimizationResultJson(Local->artifact(), Budget, Input, *R)
              .dump();

      Json Request = Json::object();
      Request.set("budget", Budget);
      Request.set("input", Json::numberArray(Input));
      Request.set("confidence", Confidence);
      Request.set("aggressive", Aggressive);
      ASSERT_FALSE(sendAll(*Sock, Request.dump() + "\n").has_value());
      std::optional<std::string> Line = recvResponseLine(*Sock, Framer);
      ASSERT_TRUE(Line.has_value());
      Expected<Json> Response = Json::parse(*Line);
      ASSERT_TRUE(static_cast<bool>(Response)) << *Line;
      Expected<const Json *> Result = getObject(*Response, "result");
      ASSERT_TRUE(static_cast<bool>(Result)) << *Line;
      EXPECT_EQ((*Result)->dump(), LocalDoc)
          << "budget " << Budget << (Aggressive ? ", aggressive" : "");
    }
  }
  (*Srv)->shutdown();
}

//===----------------------------------------------------------------------===//
// Layered pipeline: cache and grid hits vs the compute path
//===----------------------------------------------------------------------===//

namespace {

/// Wraps one of the shared models in an artifact the planner layer can
/// serve; mirrors the server equivalence test above.
OpproxArtifact makeArtifact(const AppModel &Model) {
  OpproxArtifact Art;
  Art.AppName = "equivalence";
  Art.ParameterNames = {"n"};
  Art.MaxLevels = std::vector<int>(Model.numBlocks(), 2);
  Art.DefaultInput = {2.0};
  Art.Model = Model;
  return Art;
}

/// Serializes a result into the exact wire/CLI document; comparing the
/// dumps checks every field of the result byte-for-byte (doubles go
/// through the Json layer's %.17g round-trip contract).
std::string resultDoc(const OpproxArtifact &Art, double Budget,
                      const std::vector<double> &Input,
                      const OptimizationResult &R) {
  return serve::optimizationResultJson(Art, Budget, Input, R).dump();
}

uint64_t counterValue(const char *Name) {
  return MetricsRegistry::global().counter(Name).value();
}

} // namespace

TEST(OptimizerEquivalenceTest, CachedResultsMatchUncachedBitwise) {
  // The acceptance bar for the schedule cache: a hit must be
  // indistinguishable from re-running the optimizer -- across shard
  // counts, budgets, confidence modes, and worker counts. Each (budget,
  // mode) pair is solved directly, then requested twice through the
  // planner; the first planner call misses (compute path), the second
  // hits (memoized path), and all three must serialize identically.
  const std::vector<double> Input = {2.0};
  OpproxArtifact Art = makeArtifact(modelA());
  for (size_t Shards : {1u, 3u, 8u}) {
    PlannerOptions POpts;
    POpts.Cache.Shards = Shards;
    POpts.Cache.Capacity = 1024;
    OptimizePlanner Planner(POpts);
    ASSERT_TRUE(Planner.cacheEnabled());

    for (double Budget : {0.0, 0.02, 0.1, 0.5, 5.0}) {
      for (bool Conservative : {true, false}) {
        for (size_t Threads : {1u, 4u}) {
          OptimizeOptions Opts;
          Opts.Conservative = Conservative;
          Opts.NumThreads = Threads;
          OptimizationResult Ref = optimizeSchedule(
              Art.Model, Input, Art.MaxLevels, Budget, Opts);

          uint64_t Hits = counterValue("cache.hits");
          Expected<OptimizationResult> Miss =
              Planner.optimize(Art, Input, Budget, Opts);
          ASSERT_TRUE(static_cast<bool>(Miss)) << Miss.error().message();
          Expected<OptimizationResult> Hit =
              Planner.optimize(Art, Input, Budget, Opts);
          ASSERT_TRUE(static_cast<bool>(Hit)) << Hit.error().message();

          std::string What = "shards " + std::to_string(Shards) +
                             ", budget " + std::to_string(Budget) +
                             (Conservative ? ", conservative" : ", plain") +
                             ", threads " + std::to_string(Threads);
          // NumThreads is decision-irrelevant, so the second Threads
          // iteration of a (budget, mode) pair is itself a cache hit;
          // either way the hit count must have moved for the repeat.
          EXPECT_GT(counterValue("cache.hits"), Hits) << What;
          expectSameDecisions(Ref, *Miss, What + " (miss path)");
          expectSameDecisions(Ref, *Hit, What + " (hit path)");
          EXPECT_EQ(resultDoc(Art, Budget, Input, Ref),
                    resultDoc(Art, Budget, Input, *Miss))
              << What;
          EXPECT_EQ(resultDoc(Art, Budget, Input, Ref),
                    resultDoc(Art, Budget, Input, *Hit))
              << What;
        }
      }
    }
  }
}

TEST(OptimizerEquivalenceTest, GridHitsMatchFullSolveBitwise) {
  // Precomputed budget-grid points must survive the artifact's JSON
  // round trip and come back bit-identical to a fresh solve. The
  // planner runs with the cache disabled so the only short-circuit
  // available is the grid itself (proven via the grid_hits counter).
  const std::vector<double> Input = {2.0};
  const std::vector<double> Budgets = {0.02, 0.1, 0.5, 5.0};
  OpproxArtifact Art = makeArtifact(modelB());

  BudgetGridOptions GridOpts;
  GridOpts.Enabled = true;
  GridOpts.Budgets = Budgets;
  Art.BudgetGrids = computeBudgetGrids(Art.Model, Art.MaxLevels,
                                       Art.DefaultInput, {}, GridOpts);
  ASSERT_EQ(Art.BudgetGrids.size(), 1u);
  ASSERT_EQ(Art.BudgetGrids[0].Points.size(), Budgets.size());

  Expected<OpproxArtifact> Reloaded =
      OpproxArtifact::deserialize(Art.serialize());
  ASSERT_TRUE(static_cast<bool>(Reloaded)) << Reloaded.error().message();
  ASSERT_EQ(Reloaded->BudgetGrids.size(), 1u);

  PlannerOptions POpts;
  POpts.UseCache = false;
  OptimizePlanner Planner(POpts);
  ASSERT_FALSE(Planner.cacheEnabled());

  for (double Budget : Budgets) {
    OptimizeOptions Opts; // Grid solve defaults: conservative, p=0.99.
    OptimizationResult Ref = optimizeSchedule(
        Reloaded->Model, Input, Reloaded->MaxLevels, Budget, Opts);

    uint64_t GridHits = counterValue("cache.grid_hits");
    Expected<OptimizationResult> Got =
        Planner.optimize(*Reloaded, Input, Budget, Opts);
    ASSERT_TRUE(static_cast<bool>(Got)) << Got.error().message();
    EXPECT_EQ(counterValue("cache.grid_hits"), GridHits + 1)
        << "budget " << Budget << " should resolve from the grid";

    expectSameDecisions(Ref, *Got, "grid budget " + std::to_string(Budget));
    EXPECT_EQ(resultDoc(*Reloaded, Budget, Input, Ref),
              resultDoc(*Reloaded, Budget, Input, *Got))
        << "grid budget " << Budget;
  }

  // A request the grid does not cover -- different confidence mode --
  // must fall through to the compute path, not misapply a grid point.
  OptimizeOptions Aggressive;
  Aggressive.Conservative = false;
  uint64_t GridHits = counterValue("cache.grid_hits");
  OptimizationResult Ref = optimizeSchedule(
      Reloaded->Model, Input, Reloaded->MaxLevels, Budgets[0], Aggressive);
  Expected<OptimizationResult> Got =
      Planner.optimize(*Reloaded, Input, Budgets[0], Aggressive);
  ASSERT_TRUE(static_cast<bool>(Got)) << Got.error().message();
  EXPECT_EQ(counterValue("cache.grid_hits"), GridHits)
      << "aggressive request must not hit a conservative grid";
  expectSameDecisions(Ref, *Got, "aggressive fall-through");
}

//===----------------------------------------------------------------------===//
// Cache concurrency (suite runs under TSan in CI; see .github/workflows)
//===----------------------------------------------------------------------===//

TEST(ScheduleCacheConcurrencyTest, HammerLookupOrComputeStaysBitIdentical) {
  // Many threads fight over the same small key set; every response --
  // whether it was computed on a miss or served from a shard -- must
  // serialize to the exact reference document. gtest assertions are not
  // thread-safe, so workers count mismatches and the main thread judges.
  const std::vector<double> Input = {2.0};
  const std::vector<double> Budgets = {0.0,  0.02, 0.05, 0.1, 0.2,
                                       0.35, 0.5,  1.0,  2.0, 5.0};
  OpproxArtifact Art = makeArtifact(modelA());

  std::vector<std::string> RefDocs;
  for (double Budget : Budgets) {
    OptimizeOptions Opts;
    RefDocs.push_back(resultDoc(
        Art, Budget, Input,
        optimizeSchedule(Art.Model, Input, Art.MaxLevels, Budget, Opts)));
  }

  PlannerOptions POpts;
  POpts.Cache.Shards = 4;
  POpts.Cache.Capacity = 1024;
  OptimizePlanner Planner(POpts);

  constexpr size_t NumThreads = 8;
  constexpr size_t Iterations = 120;
  std::atomic<size_t> Mismatches{0};
  std::atomic<size_t> Failures{0};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      for (size_t I = 0; I < Iterations; ++I) {
        size_t Pick = (T * 7 + I) % Budgets.size();
        OptimizeOptions Opts;
        Expected<OptimizationResult> R =
            Planner.optimize(Art, Input, Budgets[Pick], Opts);
        if (!R) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (resultDoc(Art, Budgets[Pick], Input, *R) != RefDocs[Pick])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u);
  // The key set is tiny and hot, so almost everything after the first
  // wave of misses must have been served from the cache.
  EXPECT_GT(counterValue("cache.hits"),
            NumThreads * Iterations / 2);
}

TEST(ScheduleCacheConcurrencyTest, EvictionUnderContentionStaysBitIdentical) {
  // A deliberately tiny cache (capacity 4 across 2 shards) with a key
  // set three times its size forces constant LRU eviction while threads
  // race lookups, inserts, and evictions on the same shards. Responses
  // must stay bit-identical throughout and the eviction counter must
  // actually move -- this is the test that puts insert/evict/splice
  // under TSan.
  const std::vector<double> Input = {1.0};
  std::vector<double> Budgets;
  for (size_t I = 0; I < 12; ++I)
    Budgets.push_back(0.05 * static_cast<double>(I + 1));
  OpproxArtifact Art = makeArtifact(modelB());

  std::vector<std::string> RefDocs;
  for (double Budget : Budgets) {
    OptimizeOptions Opts;
    RefDocs.push_back(resultDoc(
        Art, Budget, Input,
        optimizeSchedule(Art.Model, Input, Art.MaxLevels, Budget, Opts)));
  }

  PlannerOptions POpts;
  POpts.Cache.Shards = 2;
  POpts.Cache.Capacity = 4;
  OptimizePlanner Planner(POpts);
  uint64_t Evictions = counterValue("cache.evictions");

  constexpr size_t NumThreads = 6;
  constexpr size_t Iterations = 60;
  std::atomic<size_t> Mismatches{0};
  std::atomic<size_t> Failures{0};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      for (size_t I = 0; I < Iterations; ++I) {
        size_t Pick = (T * 5 + I) % Budgets.size();
        OptimizeOptions Opts;
        Expected<OptimizationResult> R =
            Planner.optimize(Art, Input, Budgets[Pick], Opts);
        if (!R) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (resultDoc(Art, Budgets[Pick], Input, *R) != RefDocs[Pick])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_GT(counterValue("cache.evictions"), Evictions);
}

TEST(OptimizerParallelTest, PlannerScanPoolMatchesSerialBitwise) {
  // A planner built with ScanThreads > 1 owns a shared pool and injects
  // it into every compute-layer solve; the schedule cache key ignores
  // it, so the only acceptable observable difference is speed. Cache
  // and grids are disabled so every request exercises the compute path.
  const std::vector<double> Input = {2.0};
  OpproxArtifact Art = makeArtifact(modelA());

  PlannerOptions SerialOpts;
  SerialOpts.UseCache = false;
  SerialOpts.UseGrids = false;
  OptimizePlanner Serial(SerialOpts);
  EXPECT_EQ(Serial.scanExecutors(), 1u);
  EXPECT_EQ(Serial.scanPool(), nullptr);

  PlannerOptions PoolOpts = SerialOpts;
  PoolOpts.ScanThreads = 4;
  OptimizePlanner Pooled(PoolOpts);
  EXPECT_EQ(Pooled.scanExecutors(), 4u);
  ASSERT_NE(Pooled.scanPool(), nullptr);

  for (double Budget : {0.0, 0.05, 0.3, 2.0}) {
    OptimizeOptions Opts;
    Expected<OptimizationResult> Ref =
        Serial.optimize(Art, Input, Budget, Opts);
    ASSERT_TRUE(static_cast<bool>(Ref)) << Ref.error().message();
    Expected<OptimizationResult> Got =
        Pooled.optimize(Art, Input, Budget, Opts);
    ASSERT_TRUE(static_cast<bool>(Got)) << Got.error().message();
    expectSameDecisions(*Ref, *Got,
                        "scan pool, budget " + std::to_string(Budget));
  }
}

TEST(ScheduleCacheConcurrencyTest, SharedScanPoolHammerStaysBitIdentical) {
  // Concurrent requests racing into one planner whose cache-miss solves
  // all fan across the same shared scan pool -- the serving tier's
  // --scan-threads shape, and the test that puts cross-pool parallelFor
  // (requests running *on* other pools' worker threads) under TSan. A
  // tiny cache keeps real compute in the mix throughout.
  const std::vector<double> Input = {1.0};
  std::vector<double> Budgets;
  for (size_t I = 0; I < 10; ++I)
    Budgets.push_back(0.06 * static_cast<double>(I + 1));
  OpproxArtifact Art = makeArtifact(modelB());

  std::vector<std::string> RefDocs;
  for (double Budget : Budgets) {
    OptimizeOptions Opts;
    RefDocs.push_back(resultDoc(
        Art, Budget, Input,
        optimizeSchedule(Art.Model, Input, Art.MaxLevels, Budget, Opts)));
  }

  PlannerOptions POpts;
  POpts.Cache.Shards = 2;
  POpts.Cache.Capacity = 4;
  POpts.ScanThreads = 3;
  OptimizePlanner Planner(POpts);
  ASSERT_EQ(Planner.scanExecutors(), 3u);

  // Half the clients call from plain threads, half from inside another
  // ThreadPool's workers (as the serve shards do), so both the direct
  // and the cross-pool fan-out paths are exercised.
  ThreadPool ClientPool(3);
  constexpr size_t NumThreads = 6;
  constexpr size_t Iterations = 40;
  std::atomic<size_t> Mismatches{0};
  std::atomic<size_t> Failures{0};
  auto Client = [&](size_t T) {
    for (size_t I = 0; I < Iterations; ++I) {
      size_t Pick = (T * 3 + I) % Budgets.size();
      OptimizeOptions Opts;
      Expected<OptimizationResult> R =
          Planner.optimize(Art, Input, Budgets[Pick], Opts);
      if (!R) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (resultDoc(Art, Budgets[Pick], Input, *R) != RefDocs[Pick])
        Mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> Workers;
  for (size_t T = 0; T < NumThreads / 2; ++T)
    Workers.emplace_back([&, T] { Client(T); });
  ClientPool.parallelFor(NumThreads / 2,
                         [&](size_t T) { Client(NumThreads / 2 + T); });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u);
}
