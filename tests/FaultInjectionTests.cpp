//===- tests/FaultInjectionTests.cpp - fault registry + degradation -------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The contract under test (see support/FaultInjection.h and
// docs/RELIABILITY.md): fault sequences are deterministic per spec,
// armed sites make the serving path degrade -- retry, last-known-good
// artifact, per-phase exact fallback -- instead of crashing, every
// degradation is counted in telemetry, and with nothing armed behavior
// is bit-identical to a build without fault injection at all.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/OfflineTrainer.h"
#include "core/OpproxRuntime.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

using namespace opprox;

namespace {

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// One cheap trained artifact shared by every test in this file;
/// trained before any fault is armed.
const OpproxArtifact &testArtifact() {
  static OpproxArtifact Art = [] {
    auto App = createApp("pso");
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 6;
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
    return OfflineTrainer::train(*App, Opts).Artifact;
  }();
  return Art;
}

/// Draws \p N visits of \p Site from \p R as a bool sequence.
std::vector<bool> drawSequence(FaultRegistry &R, const char *Site, size_t N) {
  std::vector<bool> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(R.shouldFail(Site));
  return Out;
}

/// Every test arms the *global* registry at most inside its body and
/// must leave it disarmed; fault state leaking across tests would make
/// the rest of the suite nondeterministic.
class FaultInjectionTest : public ::testing::Test {
protected:
  void TearDown() override { FaultRegistry::global().clear(); }

  void armGlobal(const std::string &Spec) {
    std::optional<Error> E = FaultRegistry::global().configure(Spec);
    ASSERT_FALSE(E.has_value()) << E->message();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, DisarmedByDefault) {
  EXPECT_FALSE(FaultRegistry::global().armed());
  EXPECT_FALSE(faultPoint(faults::JsonRead));
  EXPECT_EQ(FaultRegistry::global().injectedTotal(), 0u);
}

TEST_F(FaultInjectionTest, ConfigureArmsAndClearDisarms) {
  FaultRegistry R;
  EXPECT_FALSE(R.armed());
  ASSERT_FALSE(R.configure("json.read:1.0:42").has_value());
  EXPECT_TRUE(R.armed());
  EXPECT_TRUE(R.shouldFail(faults::JsonRead));
  EXPECT_FALSE(R.shouldFail(faults::JsonParse)); // Not configured.
  R.clear();
  EXPECT_FALSE(R.armed());
  EXPECT_FALSE(R.shouldFail(faults::JsonRead));
  EXPECT_EQ(R.injectedTotal(), 0u);
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected) {
  FaultRegistry R;
  for (const char *Bad :
       {"json.read", "json.read:2.0", "json.read:-0.5", "json.read:nan",
        "no.such.site:1.0", "json.read:1.0:notaseed",
        "json.read:1.0:1:notacap", "json.read:1.0:1:2:extra"}) {
    std::optional<Error> E = R.configure(Bad);
    EXPECT_TRUE(E.has_value()) << "spec '" << Bad << "' was accepted";
    EXPECT_FALSE(R.armed()) << "spec '" << Bad << "' armed the registry";
  }
  // The unknown-site diagnostic names the known sites.
  std::optional<Error> E = R.configure("no.such.site:1.0");
  ASSERT_TRUE(E.has_value());
  EXPECT_NE(E->message().find("json.read"), std::string::npos)
      << E->message();
}

TEST(FaultInjectionDeathTest, MalformedEnvSpecIsFatal) {
  // A typo in OPPROX_FAULTS silently disarming a fault harness would
  // defeat the point of running one, so global() treats it as fatal.
  // The threadsafe style re-executes the binary for the death statement,
  // so the child's registry is fresh and re-reads the environment.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        setenv("OPPROX_FAULTS", "no.such.site:1.0", 1);
        faultPoint(faults::JsonRead);
      },
      "OPPROX_FAULTS");
}

TEST_F(FaultInjectionTest, SameSpecReplaysIdenticalSequence) {
  FaultRegistry A, B;
  ASSERT_FALSE(A.configure("json.read:0.5:1234").has_value());
  ASSERT_FALSE(B.configure("json.read:0.5:1234").has_value());
  std::vector<bool> SeqA = drawSequence(A, faults::JsonRead, 300);
  std::vector<bool> SeqB = drawSequence(B, faults::JsonRead, 300);
  EXPECT_EQ(SeqA, SeqB);
  // At p = 0.5 over 300 visits both outcomes must occur.
  EXPECT_NE(std::count(SeqA.begin(), SeqA.end(), true), 0);
  EXPECT_NE(std::count(SeqA.begin(), SeqA.end(), false), 0);
  // Reconfiguring with the same spec rewinds the stream.
  ASSERT_FALSE(A.configure("json.read:0.5:1234").has_value());
  EXPECT_EQ(drawSequence(A, faults::JsonRead, 300), SeqA);
}

TEST_F(FaultInjectionTest, DifferentSeedsGiveDifferentSequences) {
  FaultRegistry A, B;
  ASSERT_FALSE(A.configure("json.read:0.5:1").has_value());
  ASSERT_FALSE(B.configure("json.read:0.5:2").has_value());
  EXPECT_NE(drawSequence(A, faults::JsonRead, 300),
            drawSequence(B, faults::JsonRead, 300));
}

TEST_F(FaultInjectionTest, ProbabilityEndpointsAreExact) {
  FaultRegistry R;
  ASSERT_FALSE(R.configure("json.read:0.0:7,json.parse:1.0:7").has_value());
  for (size_t I = 0; I < 200; ++I) {
    EXPECT_FALSE(R.shouldFail(faults::JsonRead));
    EXPECT_TRUE(R.shouldFail(faults::JsonParse));
  }
  EXPECT_EQ(R.injectedAt(faults::JsonRead), 0u);
  EXPECT_EQ(R.injectedAt(faults::JsonParse), 200u);
  EXPECT_EQ(R.injectedTotal(), 200u);
}

TEST_F(FaultInjectionTest, InjectionCapStopsFiring) {
  FaultRegistry R;
  ASSERT_FALSE(R.configure("json.read:1.0:5:3").has_value());
  size_t Fired = 0;
  for (size_t I = 0; I < 50; ++I)
    Fired += R.shouldFail(faults::JsonRead) ? 1 : 0;
  EXPECT_EQ(Fired, 3u);
  EXPECT_EQ(R.injectedAt(faults::JsonRead), 3u);
}

TEST_F(FaultInjectionTest, AllShorthandArmsEverySite) {
  FaultRegistry R;
  ASSERT_FALSE(R.configure("all:1.0:9").has_value());
  for (const std::string &Site : allFaultSites())
    EXPECT_TRUE(R.shouldFail(Site.c_str())) << Site;
  EXPECT_EQ(R.injectedTotal(), allFaultSites().size());
}

TEST_F(FaultInjectionTest, AllShorthandStreamsAreIndependent) {
  // Visiting one site must not perturb another site's sequence: the
  // parse-site draws below are identical whether or not read-site
  // visits interleave.
  FaultRegistry A, B;
  ASSERT_FALSE(A.configure("all:0.5:21").has_value());
  ASSERT_FALSE(B.configure("all:0.5:21").has_value());
  std::vector<bool> Pure = drawSequence(A, faults::JsonParse, 100);
  std::vector<bool> Interleaved;
  for (size_t I = 0; I < 100; ++I) {
    B.shouldFail(faults::JsonRead);
    Interleaved.push_back(B.shouldFail(faults::JsonParse));
  }
  EXPECT_EQ(Pure, Interleaved);
}

TEST_F(FaultInjectionTest, InjectionsCountIntoTelemetry) {
  Counter &Total = MetricsRegistry::global().counter("fault.injected_total");
  Counter &AtSite =
      MetricsRegistry::global().counter("fault.injected.json.read");
  uint64_t TotalBefore = Total.value();
  uint64_t SiteBefore = AtSite.value();
  FaultRegistry R;
  ASSERT_FALSE(R.configure("json.read:1.0:3").has_value());
  for (size_t I = 0; I < 5; ++I)
    R.shouldFail(faults::JsonRead);
  EXPECT_EQ(Total.value() - TotalBefore, 5u);
  EXPECT_EQ(AtSite.value() - SiteBefore, 5u);
}

//===----------------------------------------------------------------------===//
// Sites: I/O, parsing, thread pool, predictions
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, ReadFileFaultYieldsCleanError) {
  std::string Path = tempPath("fault-readfile.json");
  {
    std::ofstream Out(Path);
    Out << "{}";
  }
  armGlobal("json.read:1.0");
  Expected<std::string> Text = readFile(Path);
  ASSERT_FALSE(Text);
  EXPECT_NE(Text.error().message().find("fault injection"),
            std::string::npos)
      << Text.error().message();
  FaultRegistry::global().clear();
  EXPECT_TRUE(readFile(Path));
  std::remove(Path.c_str());
}

TEST_F(FaultInjectionTest, JsonParseFaultYieldsCleanError) {
  armGlobal("json.parse:1.0");
  Expected<Json> Doc = Json::parse("{\"ok\": true}");
  ASSERT_FALSE(Doc);
  EXPECT_NE(Doc.error().message().find("fault injection"), std::string::npos);
  FaultRegistry::global().clear();
  EXPECT_TRUE(Json::parse("{\"ok\": true}"));
}

TEST_F(FaultInjectionTest, ThreadPoolSubmitFaultLandsInTheFuture) {
  armGlobal("threadpool.task:1.0");
  ThreadPool Pool(2);
  bool Ran = false;
  std::future<void> F = Pool.submit([&] { Ran = true; });
  try {
    F.get();
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError &E) {
    EXPECT_EQ(E.site(), faults::ThreadPoolTask);
  }
  EXPECT_FALSE(Ran); // The task died before its body ran.
}

TEST_F(FaultInjectionTest, ParallelForRethrowsInjectedTaskDeath) {
  armGlobal("threadpool.task:1.0");
  ThreadPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(8, [](size_t) {}), FaultInjectedError);
  // The inline path (worker-less pool) takes the same contract.
  ThreadPool Inline(0);
  EXPECT_THROW(Inline.parallelFor(4, [](size_t) {}), FaultInjectedError);
}

TEST_F(FaultInjectionTest, PredictionFaultsProduceNanAndInf) {
  const OpproxArtifact &Art = testArtifact();
  const std::vector<double> Input = Art.DefaultInput;
  const PhaseModels &PM = Art.Model.phaseModels(Input, 0);
  std::vector<int> Levels(Art.numBlocks(), 1);

  armGlobal("model.predict.nan:1.0");
  EXPECT_TRUE(std::isnan(PM.predictSpeedup(Input, Levels)));
  EXPECT_TRUE(std::isnan(PM.predictQos(Input, Levels)));

  armGlobal("model.predict.inf:1.0");
  EXPECT_TRUE(std::isinf(PM.predictSpeedup(Input, Levels)));
  EXPECT_TRUE(std::isinf(PM.predictQos(Input, Levels)));

  FaultRegistry::global().clear();
  EXPECT_TRUE(std::isfinite(PM.predictSpeedup(Input, Levels)));
}

//===----------------------------------------------------------------------===//
// Degradation ladder rung 3: per-phase fallback to the exact schedule
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, NanPredictionsDegradeEveryPhaseToExact) {
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  Counter &Degraded =
      MetricsRegistry::global().counter("runtime.degraded_phases");
  uint64_t Before = Degraded.value();

  armGlobal("model.predict.nan:1.0");
  OptimizationResult R = Runtime.optimizeDetailed(Input, 10.0);

  // Every phase fell back to the exact configuration: level 0
  // everywhere, and the decision is bitwise the level-0 decision.
  PhaseSchedule Exact(Runtime.numPhases(), Runtime.numBlocks());
  EXPECT_EQ(R.Schedule.toString(), Exact.toString());
  for (const PhaseDecision &D : R.Decisions) {
    EXPECT_EQ(D.Levels, std::vector<int>(Runtime.numBlocks(), 0));
    EXPECT_TRUE(bitEqual(D.PredictedSpeedup, 1.0));
    EXPECT_TRUE(bitEqual(D.PredictedQos, 0.0));
  }
  // Phases whose entire search space is discharged by the QoS-floor
  // pruning never invoke a prediction, so they return the exact baseline
  // without tripping the fault -- degraded counts the rest.
  uint64_t DegradedPhases = Degraded.value() - Before;
  EXPECT_GE(DegradedPhases, 1u);
  EXPECT_LE(DegradedPhases, Runtime.numPhases());
}

TEST_F(FaultInjectionTest, InfPredictionsDegradeTheNaiveScanToo) {
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  armGlobal("model.predict.inf:1.0");
  OptimizeOptions Opts;
  Opts.UseNaiveScan = true;
  OptimizationResult R = Runtime.optimizeDetailed(Input, 10.0, Opts);
  PhaseSchedule Exact(Runtime.numPhases(), Runtime.numBlocks());
  EXPECT_EQ(R.Schedule.toString(), Exact.toString());
}

TEST_F(FaultInjectionTest, DyingScanTasksDegradeInsteadOfCrashing) {
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  Counter &Degraded =
      MetricsRegistry::global().counter("runtime.degraded_phases");
  uint64_t Before = Degraded.value();

  armGlobal("threadpool.task:1.0");
  ThreadPool Pool(2);
  OptimizeOptions Opts;
  Opts.Pool = &Pool;
  Opts.ChunkSize = 8; // Several chunks, so the pool actually fans out.
  OptimizationResult R = Runtime.optimizeDetailed(Input, 10.0, Opts);
  PhaseSchedule Exact(Runtime.numPhases(), Runtime.numBlocks());
  EXPECT_EQ(R.Schedule.toString(), Exact.toString());
  EXPECT_EQ(Degraded.value() - Before, Runtime.numPhases());
  // The pool survives for later (clean) requests.
  FaultRegistry::global().clear();
  OptimizationResult Clean = Runtime.optimizeDetailed(Input, 10.0, Opts);
  EXPECT_EQ(Clean.ConfigsEvaluated,
            Runtime.optimizeDetailed(Input, 10.0).ConfigsEvaluated);
}

TEST_F(FaultInjectionTest, DecisionsAreBitIdenticalOnceFaultsClear) {
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  OptimizationResult Before = Runtime.optimizeDetailed(Input, 12.0);

  armGlobal("model.predict.nan:1.0");
  Runtime.optimizeDetailed(Input, 12.0); // Degrades.
  FaultRegistry::global().clear();

  OptimizationResult After = Runtime.optimizeDetailed(Input, 12.0);
  ASSERT_EQ(Before.Decisions.size(), After.Decisions.size());
  for (size_t P = 0; P < Before.Decisions.size(); ++P) {
    EXPECT_EQ(Before.Decisions[P].Levels, After.Decisions[P].Levels);
    EXPECT_TRUE(bitEqual(Before.Decisions[P].PredictedSpeedup,
                         After.Decisions[P].PredictedSpeedup));
    EXPECT_TRUE(bitEqual(Before.Decisions[P].PredictedQos,
                         After.Decisions[P].PredictedQos));
  }
}

//===----------------------------------------------------------------------===//
// Degradation ladder rungs 1-2: retry, then last-known-good artifact
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, LoadRetriesRideOutTransientFaults) {
  std::string Path = tempPath("fault-retry.opprox.json");
  ASSERT_FALSE(testArtifact().save(Path).has_value());
  Counter &Retries =
      MetricsRegistry::global().counter("runtime.artifact_retries");
  uint64_t Before = Retries.value();

  // The first two attempts fail (cap 2); the third succeeds.
  armGlobal("runtime.load:1.0:1:2");
  ArtifactLoadOptions Opts;
  Opts.Retry.MaxAttempts = 3;
  Opts.Retry.InitialBackoffMs = 0.0;
  Expected<OpproxRuntime> Runtime = OpproxRuntime::loadArtifact(Path, Opts);
  ASSERT_TRUE(Runtime) << Runtime.error().message();
  EXPECT_EQ(Runtime->appName(), "pso");
  EXPECT_EQ(Retries.value() - Before, 2u);
  std::remove(Path.c_str());
}

TEST_F(FaultInjectionTest, ExhaustedRetriesFallBackToLastGood) {
  std::string Path = tempPath("fault-lastgood.opprox.json");
  ASSERT_FALSE(testArtifact().save(Path).has_value());
  ArtifactLoadOptions Opts;
  Opts.Retry.MaxAttempts = 2;
  Opts.Retry.InitialBackoffMs = 0.0;
  // Prime the last-good cache with a clean load.
  ASSERT_TRUE(OpproxRuntime::loadArtifact(Path, Opts));

  Counter &LastGood =
      MetricsRegistry::global().counter("runtime.artifact_last_good");
  uint64_t Before = LastGood.value();
  armGlobal("json.read:1.0"); // Every read attempt fails, uncapped.
  Expected<OpproxRuntime> Runtime = OpproxRuntime::loadArtifact(Path, Opts);
  ASSERT_TRUE(Runtime) << Runtime.error().message();
  EXPECT_EQ(Runtime->appName(), "pso");
  EXPECT_EQ(LastGood.value() - Before, 1u);

  // Without the fallback the failure surfaces.
  Opts.UseLastGood = false;
  Expected<OpproxRuntime> NoFallback = OpproxRuntime::loadArtifact(Path, Opts);
  ASSERT_FALSE(NoFallback);
  EXPECT_NE(NoFallback.error().message().find("fault injection"),
            std::string::npos);
  std::remove(Path.c_str());
}

TEST_F(FaultInjectionTest, LoadFailsCleanlyWithEmptyLastGoodCache) {
  armGlobal("json.read:1.0");
  ArtifactLoadOptions Opts;
  Opts.Retry.MaxAttempts = 2;
  Opts.Retry.InitialBackoffMs = 0.0;
  Expected<OpproxRuntime> Runtime = OpproxRuntime::loadArtifact(
      tempPath("never-loaded.opprox.json"), Opts);
  ASSERT_FALSE(Runtime);
  EXPECT_NE(Runtime.error().message().find("fault injection"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, SaveRetriesRideOutTransientWriteFaults) {
  std::string Path = tempPath("fault-save.opprox.json");
  Counter &Retries =
      MetricsRegistry::global().counter("train.artifact_save_retries");
  uint64_t Before = Retries.value();

  armGlobal("artifact.write:1.0:1:2"); // First two saves fail.
  RetryPolicy Policy;
  Policy.MaxAttempts = 3;
  Policy.InitialBackoffMs = 0.0;
  ASSERT_FALSE(testArtifact().save(Path, Policy).has_value());
  EXPECT_EQ(Retries.value() - Before, 2u);

  FaultRegistry::global().clear();
  EXPECT_TRUE(OpproxArtifact::load(Path));
  std::remove(Path.c_str());
}

TEST_F(FaultInjectionTest, CorruptionFaultSurfacesAsParseError) {
  std::string Path = tempPath("fault-corrupt.opprox.json");
  ASSERT_FALSE(testArtifact().save(Path).has_value());
  armGlobal("artifact.corrupt:1.0");
  Expected<OpproxArtifact> Art = OpproxArtifact::load(Path);
  ASSERT_FALSE(Art);
  // The injected truncation exercises the real parse-error path.
  EXPECT_NE(Art.error().message().find("JSON parse error"),
            std::string::npos)
      << Art.error().message();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Request validation (tryOptimizeDetailed)
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, MalformedRequestsComeBackAsErrors) {
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  EXPECT_FALSE(Runtime.tryOptimizeDetailed(Input, -1.0));
  EXPECT_FALSE(Runtime.tryOptimizeDetailed(Input, std::nan("")));
  EXPECT_FALSE(
      Runtime.tryOptimizeDetailed(std::vector<double>{1.0, 2.0, 3.0}, 5.0));
  Expected<OptimizationResult> Ok = Runtime.tryOptimizeDetailed(Input, 5.0);
  ASSERT_TRUE(Ok) << Ok.error().message();
  EXPECT_EQ(Ok->Decisions.size(), Runtime.numPhases());
}

//===----------------------------------------------------------------------===//
// Schedule cache under faults
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, NegativeCacheReplaysMalformedRequestErrors) {
  // Repeating a malformed request must replay the memoized rejection --
  // same message, no revalidation -- visible as a negative hit.
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  Counter &NegativeHits =
      MetricsRegistry::global().counter("cache.negative_hits");

  uint64_t Before = NegativeHits.value();
  Expected<OptimizationResult> First =
      Runtime.tryOptimizeDetailed(Input, -3.0);
  ASSERT_FALSE(First);
  EXPECT_EQ(NegativeHits.value(), Before); // First sighting: a miss.
  Expected<OptimizationResult> Second =
      Runtime.tryOptimizeDetailed(Input, -3.0);
  ASSERT_FALSE(Second);
  EXPECT_EQ(NegativeHits.value(), Before + 1);
  EXPECT_EQ(First.error().message(), Second.error().message());
  EXPECT_NE(First.error().message().find("non-negative"), std::string::npos)
      << First.error().message();

  // Arity mismatches memoize under their own key.
  const std::vector<double> WrongArity = {1.0, 2.0, 3.0};
  Expected<OptimizationResult> Arity1 =
      Runtime.tryOptimizeDetailed(WrongArity, 5.0);
  ASSERT_FALSE(Arity1);
  Expected<OptimizationResult> Arity2 =
      Runtime.tryOptimizeDetailed(WrongArity, 5.0);
  ASSERT_FALSE(Arity2);
  EXPECT_EQ(NegativeHits.value(), Before + 2);
  EXPECT_EQ(Arity1.error().message(), Arity2.error().message());
  EXPECT_NE(Arity1.error().message().find("expects"), std::string::npos)
      << Arity1.error().message();
}

TEST_F(FaultInjectionTest, DegradedResultsAreNeverCached) {
  // A result produced under the fault ladder reflects the fault, not
  // the model; memoizing it would keep serving exact-fallback schedules
  // long after the fault cleared. So a degraded solve must leave the
  // cache untouched and the first healthy repeat must recompute.
  OpproxRuntime Runtime = OpproxRuntime::fromArtifact(testArtifact());
  const std::vector<double> Input = Runtime.artifact().DefaultInput;
  Counter &Misses = MetricsRegistry::global().counter("cache.misses");
  Counter &Hits = MetricsRegistry::global().counter("cache.hits");

  uint64_t MissesBefore = Misses.value();
  armGlobal("model.predict.nan:1.0");
  Expected<OptimizationResult> Degraded =
      Runtime.tryOptimizeDetailed(Input, 10.0);
  ASSERT_TRUE(Degraded) << Degraded.error().message();
  ASSERT_FALSE(Degraded->DegradedPhases.empty());
  EXPECT_EQ(Misses.value(), MissesBefore + 1);

  FaultRegistry::global().clear();
  uint64_t HitsBefore = Hits.value();
  Expected<OptimizationResult> Clean =
      Runtime.tryOptimizeDetailed(Input, 10.0);
  ASSERT_TRUE(Clean) << Clean.error().message();
  EXPECT_TRUE(Clean->DegradedPhases.empty());
  // The healthy repeat was a recompute (miss), not a hit on the
  // degraded result...
  EXPECT_EQ(Misses.value(), MissesBefore + 2);
  EXPECT_EQ(Hits.value(), HitsBefore);

  // ...and the healthy result is what got memoized.
  Expected<OptimizationResult> FromCache =
      Runtime.tryOptimizeDetailed(Input, 10.0);
  ASSERT_TRUE(FromCache) << FromCache.error().message();
  EXPECT_TRUE(FromCache->DegradedPhases.empty());
  EXPECT_EQ(Hits.value(), HitsBefore + 1);
  EXPECT_EQ(FromCache->Schedule.toString(), Clean->Schedule.toString());
}
