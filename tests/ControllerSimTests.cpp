//===- tests/ControllerSimTests.cpp - online controller simulation --------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The headline test asset of the control loop (docs/CONTROL.md): a
// deterministic scripted fake-app replays seeded drift traces -- sudden
// shift, gradual drift, noise-only, adversarial misclassification --
// against an OnlineController, and every reactive decision must be
// reproducible bit for bit. The no-op guarantee anchors everything:
// with zero observed drift the controller is indistinguishable from the
// offline pipeline, down to the final schedule's bits.
//
// All tests share one cheap PSO artifact (4 phases, 1 control-flow
// class, 3 blocks), trained before any fault is armed.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "control/ControlSim.h"
#include "core/OfflineTrainer.h"
#include "core/OpproxRuntime.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include <cstring>
#include <gtest/gtest.h>

using namespace opprox;
using namespace opprox::control;

namespace {

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// One cheap trained artifact shared by every test in this file;
/// trained before any fault is armed.
const OpproxArtifact &testArtifact() {
  static OpproxArtifact Art = [] {
    auto App = createApp("pso");
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 6;
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
    return OfflineTrainer::train(*App, Opts).Artifact;
  }();
  return Art;
}

const OpproxRuntime &testRuntime() {
  static OpproxRuntime Rt = OpproxRuntime::fromArtifact(testArtifact());
  return Rt;
}

std::vector<double> testInput() { return {30, 5}; }

/// The controller regime the drift bench runs (see bench/control_drift.cpp):
/// aggressive point planning, pure point tracking, full ratio adoption.
/// In model space a scripted zero-drift run sits exactly on the point
/// prediction, so even a zero-width band never distrusts it.
ControllerOptions modelTrustingOptions() {
  ControllerOptions Opts;
  Opts.Optimize.Conservative = false;
  Opts.DistrustFactor = 0.0;
  Opts.RatioAlpha = 1.0;
  return Opts;
}

DriftSpec drift(DriftSpec::Kind Kind, double Magnitude, double Onset = 0.0,
                uint64_t Seed = 0) {
  DriftSpec D;
  D.DriftKind = Kind;
  D.Magnitude = Magnitude;
  D.Onset = Onset;
  D.Seed = Seed;
  return D;
}

bool sameDecisions(const SimOutcome &A, const SimOutcome &B) {
  return A.ScheduleTrace == B.ScheduleTrace &&
         A.FinalSchedule.toString() == B.FinalSchedule.toString() &&
         A.Stats.Observations == B.Stats.Observations &&
         A.Stats.Distrusts == B.Stats.Distrusts &&
         A.Stats.Resolves == B.Stats.Resolves &&
         A.Stats.Corrections == B.Stats.Corrections &&
         A.Stats.RejectedResolves == B.Stats.RejectedResolves &&
         A.Stats.DroppedObservations == B.Stats.DroppedObservations &&
         bitEqual(A.DistrustRatio, B.DistrustRatio) &&
         bitEqual(A.ControlledQos, B.ControlledQos);
}

/// Fault state must never leak across tests.
class ControllerSimTest : public ::testing::Test {
protected:
  void TearDown() override { FaultRegistry::global().clear(); }

  void armGlobal(const std::string &Spec) {
    std::optional<Error> E = FaultRegistry::global().configure(Spec);
    ASSERT_FALSE(E.has_value()) << E->message();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Startup: the controller begins as the offline pipeline
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, StartSolvesTheExactOfflineSchedule) {
  const OpproxRuntime &Rt = testRuntime();
  OptimizationResult Offline = Rt.optimizeDetailed(testInput(), 10.0);
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C)) << C.error().message();
  EXPECT_EQ(C->schedule().toString(), Offline.Schedule.toString());
  EXPECT_EQ(C->nextPhase(), 0u);
  EXPECT_EQ(C->spentQos(), 0.0);
  EXPECT_EQ(C->remainingBudget(), 10.0);
  EXPECT_EQ(C->distrustRatio(), 1.0);
  EXPECT_EQ(C->numPhases(), Rt.numPhases());
  EXPECT_EQ(C->stats().Observations, 0u);
}

TEST_F(ControllerSimTest, StartRejectsMalformedRequestsLikeTheServingPath) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OnlineController> BadArity =
      OnlineController::start(Rt, {1.0, 2.0, 3.0}, 10.0);
  EXPECT_FALSE(static_cast<bool>(BadArity));
  Expected<OnlineController> BadBudget =
      OnlineController::start(Rt, testInput(), -1.0);
  EXPECT_FALSE(static_cast<bool>(BadBudget));
}

TEST_F(ControllerSimTest, InBandObservationAdvancesWithoutReacting) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Before = C->schedule().toString();
  PhaseObservation Obs;
  Obs.Phase = 0;
  Obs.ObservedQos = 0.0; // Conservative phase 0 is exact: predicts 0.
  ControlAction A = C->onPhaseComplete(Obs);
  EXPECT_FALSE(A.Distrusted);
  EXPECT_FALSE(A.Resolved);
  EXPECT_FALSE(A.Dropped);
  EXPECT_EQ(C->nextPhase(), 1u);
  EXPECT_EQ(C->schedule().toString(), Before);
  EXPECT_EQ(C->stats().Observations, 1u);
  EXPECT_EQ(C->stats().Distrusts, 0u);
}

//===----------------------------------------------------------------------===//
// The no-op guarantee
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, ZeroDriftRunIsBitIdenticalToOffline) {
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::None, 0.0));
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_EQ(O->FinalSchedule.toString(), O->OfflineSchedule.toString());
  EXPECT_EQ(O->Stats.Distrusts, 0u);
  EXPECT_EQ(O->Stats.Resolves, 0u);
  EXPECT_EQ(O->Stats.Corrections, 0u);
  // Every intermediate boundary left the schedule untouched too.
  for (const std::string &S : O->ScheduleTrace)
    EXPECT_EQ(S, O->OfflineSchedule.toString());
  EXPECT_TRUE(bitEqual(O->ControlledQos, O->OfflineQos));
}

TEST_F(ControllerSimTest, ZeroDriftHoldsInTheModelTrustingRegimeToo) {
  // Even with a zero-width trust band (DistrustFactor 0), scripted
  // zero-drift observations sit exactly on the point prediction and
  // never distrust: the no-op guarantee does not depend on band slack.
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::None, 0.0),
                     modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_EQ(O->FinalSchedule.toString(), O->OfflineSchedule.toString());
  EXPECT_EQ(O->Stats.Distrusts, 0u);
  EXPECT_EQ(O->Stats.Corrections, 0u);
}

//===----------------------------------------------------------------------===//
// Seeded drift traces replay bit-for-bit
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, SuddenDriftTraceReplaysBitForBit) {
  DriftSpec D = drift(DriftSpec::Kind::Sudden, 4.0, 0.0);
  Expected<SimOutcome> A = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  Expected<SimOutcome> B = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_TRUE(sameDecisions(*A, *B));
  // And the trace is non-trivial: the drift was actually reacted to.
  EXPECT_GT(A->Stats.Distrusts, 0u);
}

TEST_F(ControllerSimTest, GradualDriftTraceReplaysBitForBit) {
  DriftSpec D = drift(DriftSpec::Kind::Gradual, 4.0, 0.25);
  Expected<SimOutcome> A = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  Expected<SimOutcome> B = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_TRUE(sameDecisions(*A, *B));
  EXPECT_GT(A->Stats.Distrusts, 0u);
  // A ramp of inflated observations drags the EWMA ratio above 1.
  EXPECT_GT(A->DistrustRatio, 1.0);
}

TEST_F(ControllerSimTest, NoiseDriftIsAPureFunctionOfTheSeed) {
  DriftSpec D = drift(DriftSpec::Kind::Noise, 2.0, 0.0, /*Seed=*/7);
  Expected<SimOutcome> A = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  Expected<SimOutcome> B = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_TRUE(sameDecisions(*A, *B));
}

TEST_F(ControllerSimTest, ZeroAmplitudeNoiseEqualsNoDrift) {
  Expected<SimOutcome> Noise =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::Noise, 0.0, 0.0, /*Seed=*/99),
                     modelTrustingOptions());
  Expected<SimOutcome> None =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::None, 0.0),
                     modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(Noise)) << Noise.error().message();
  ASSERT_TRUE(static_cast<bool>(None)) << None.error().message();
  EXPECT_TRUE(sameDecisions(*Noise, *None));
}

TEST_F(ControllerSimTest, MisclassifiedFeedbackIsAdversarialYetDeterministic) {
  // Feedback generated from a *different* input's models (the
  // adversarial misclassification trace): predictions are evaluated at
  // the shadow input's features, so the observations genuinely depart
  // from the plan -- and the controller's reaction to them must still
  // replay bit for bit.
  DriftSpec D = drift(DriftSpec::Kind::Misclassify, 0.0);
  D.ShadowInput = {45, 6};
  Expected<SimOutcome> A = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  Expected<SimOutcome> B = runScriptedSim(testRuntime(), testInput(), 10.0, D,
                                          modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_GT(A->Stats.Distrusts, 0u);
  EXPECT_TRUE(sameDecisions(*A, *B));
}

TEST_F(ControllerSimTest, MisclassifyAsTheTrueClassIsANoOp) {
  // A "misclassification" that lands on the run's own input produces
  // feedback identical to the plan's predictions: nothing to react to.
  DriftSpec D = drift(DriftSpec::Kind::Misclassify, 0.0);
  D.ShadowInput = testInput();
  Expected<SimOutcome> Mis = runScriptedSim(testRuntime(), testInput(), 10.0,
                                            D, modelTrustingOptions());
  Expected<SimOutcome> None =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::None, 0.0),
                     modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(Mis)) << Mis.error().message();
  ASSERT_TRUE(static_cast<bool>(None)) << None.error().message();
  EXPECT_EQ(Mis->Stats.Distrusts, 0u);
  EXPECT_TRUE(sameDecisions(*Mis, *None));
}

//===----------------------------------------------------------------------===//
// Reactions: distrust, budget correction, caps
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, SuddenDriftShedsQosAgainstTheBlindSchedule) {
  // Observations running 5x the model from the first phase: the
  // controller discounts the unspent budget by the observed ratio and
  // re-plans a cooler tail, so the controlled run must end below the
  // blind offline replay.
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::Sudden, 4.0, 0.0),
                     modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_GT(O->Stats.Distrusts, 0u);
  EXPECT_GT(O->Stats.Resolves, 0u);
  EXPECT_GT(O->Stats.Corrections, 0u);
  EXPECT_LT(O->ControlledQos, O->OfflineQos);
  EXPECT_NE(O->FinalSchedule.toString(), O->OfflineSchedule.toString());
}

TEST_F(ControllerSimTest, UnderrunsReclaimHeadroomByDefault) {
  // Observations at 10% of prediction: the model over-reports cost, the
  // ratio sinks below 1, and underrun corrections may re-spend the
  // freed budget (growth capped by MaxBudgetGrowth).
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::Sudden, -0.9, 0.0),
                     modelTrustingOptions());
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_GT(O->Stats.Distrusts, 0u);
  EXPECT_LT(O->DistrustRatio, 1.0);
}

TEST_F(ControllerSimTest, CorrectUnderrunsFalseTrustsCheapObservations) {
  ControllerOptions Opts = modelTrustingOptions();
  Opts.CorrectUnderruns = false;
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::Sudden, -0.9, 0.0), Opts);
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_EQ(O->Stats.Distrusts, 0u);
  EXPECT_EQ(O->FinalSchedule.toString(), O->OfflineSchedule.toString());
}

TEST_F(ControllerSimTest, MaxResolvesCapsReSolvesButNotAccounting) {
  ControllerOptions Opts = modelTrustingOptions();
  Opts.MaxResolves = 1;
  Expected<SimOutcome> O =
      runScriptedSim(testRuntime(), testInput(), 10.0,
                     drift(DriftSpec::Kind::Sudden, 4.0, 0.0), Opts);
  ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
  EXPECT_LE(O->Stats.Resolves, 1u);
  // Later out-of-band observations still count as distrusts: the cap
  // limits re-planning, not the books.
  EXPECT_GE(O->Stats.Distrusts, O->Stats.Resolves);
}

//===----------------------------------------------------------------------===//
// Feedback is run data: drops are counted, never fatal
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, OutOfOrderFeedbackIsDroppedWithoutSpending) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C));
  PhaseObservation Obs;
  Obs.Phase = 2; // Next expected phase is 0.
  Obs.ObservedQos = 50.0;
  ControlAction A = C->onPhaseComplete(Obs);
  EXPECT_TRUE(A.Dropped);
  EXPECT_FALSE(A.Distrusted);
  EXPECT_EQ(C->spentQos(), 0.0);
  EXPECT_EQ(C->nextPhase(), 0u);
  EXPECT_EQ(C->stats().DroppedObservations, 1u);
  EXPECT_EQ(C->stats().Observations, 0u);
}

TEST_F(ControllerSimTest, PostRunFeedbackIsDropped) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C));
  for (size_t P = 0; P < Rt.numPhases(); ++P) {
    PhaseObservation Obs;
    Obs.Phase = P;
    ControlAction A = C->onPhaseComplete(Obs);
    EXPECT_FALSE(A.Dropped);
  }
  EXPECT_EQ(C->nextPhase(), Rt.numPhases());
  PhaseObservation Late;
  Late.Phase = Rt.numPhases() - 1;
  ControlAction A = C->onPhaseComplete(Late);
  EXPECT_TRUE(A.Dropped);
  EXPECT_EQ(C->stats().DroppedObservations, 1u);
}

TEST_F(ControllerSimTest, InjectedObservationLossDegradesToBlindReplay) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Offline = C->schedule().toString();
  Counter &Dropped =
      MetricsRegistry::global().counter("control.dropped_observations");
  uint64_t Before = Dropped.value();
  armGlobal("control.observe:1.0");
  for (size_t P = 0; P < Rt.numPhases(); ++P) {
    PhaseObservation Obs;
    Obs.Phase = P;
    Obs.ObservedQos = 100.0; // Would distrust loudly if it arrived.
    ControlAction A = C->onPhaseComplete(Obs);
    EXPECT_TRUE(A.Dropped);
  }
  // Every observation was lost: the run degrades to the blind offline
  // replay -- counted in telemetry, no crash, no reaction.
  EXPECT_EQ(C->schedule().toString(), Offline);
  EXPECT_EQ(C->spentQos(), 0.0);
  EXPECT_EQ(C->stats().DroppedObservations, Rt.numPhases());
  EXPECT_EQ(Dropped.value() - Before, Rt.numPhases());
  EXPECT_EQ(C->stats().Distrusts, 0u);
}

//===----------------------------------------------------------------------===//
// Degraded re-solves: reject, keep the last valid schedule
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, DegradedReSolveIsRejectedKeepingLastValidSchedule) {
  const OpproxRuntime &Rt = testRuntime();
  // Default (conservative) options: phase 0 of the offline schedule is
  // exact, so the distrust decision itself needs no model call and the
  // armed prediction faults hit only the re-solve.
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0);
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Offline = C->schedule().toString();
  armGlobal("model.predict.nan:1.0");
  PhaseObservation Obs;
  Obs.Phase = 0;
  Obs.ObservedQos = 5.0; // Far outside the band around the exact phase.
  ControlAction A = C->onPhaseComplete(Obs);
  EXPECT_TRUE(A.Distrusted);
  EXPECT_TRUE(A.Resolved);
  EXPECT_TRUE(A.RejectedDegraded);
  EXPECT_FALSE(A.Corrected);
  EXPECT_EQ(C->schedule().toString(), Offline);
  EXPECT_EQ(C->stats().RejectedResolves, 1u);
  EXPECT_EQ(C->stats().Corrections, 0u);
  // The budget accounting survives the rejection.
  EXPECT_EQ(C->spentQos(), 5.0);
  EXPECT_EQ(C->nextPhase(), 1u);
}

TEST_F(ControllerSimTest, RejectionDoesNotDoubleCountDegradedPhases) {
  const OpproxRuntime &Rt = testRuntime();
  Counter &Degraded =
      MetricsRegistry::global().counter("runtime.degraded_phases");

  // Baseline: a distrust that never re-solves (MaxResolves 0) counts
  // zero degraded phases even with prediction faults armed -- proving
  // the controller's rejection path itself adds nothing.
  {
    ControllerOptions Opts;
    Opts.MaxResolves = 0;
    Expected<OnlineController> C =
        OnlineController::start(Rt, testInput(), 10.0, Opts);
    ASSERT_TRUE(static_cast<bool>(C));
    armGlobal("model.predict.nan:1.0");
    uint64_t Before = Degraded.value();
    PhaseObservation Obs;
    Obs.Phase = 0;
    Obs.ObservedQos = 5.0;
    ControlAction A = C->onPhaseComplete(Obs);
    EXPECT_TRUE(A.Distrusted);
    EXPECT_FALSE(A.Resolved);
    EXPECT_EQ(Degraded.value() - Before, 0u);
    FaultRegistry::global().clear();
  }

  // With the re-solve allowed, the degradation is counted inside the
  // solve (phases whose chosen decision went non-finite) and the
  // controller's rejection adds nothing on top: the count is identical
  // across a repeat of the same rejected re-solve.
  uint64_t FirstDelta = 0;
  for (int Round = 0; Round < 2; ++Round) {
    Expected<OnlineController> C =
        OnlineController::start(Rt, testInput(), 10.0);
    ASSERT_TRUE(static_cast<bool>(C));
    armGlobal("model.predict.nan:1.0");
    uint64_t Before = Degraded.value();
    PhaseObservation Obs;
    Obs.Phase = 0;
    Obs.ObservedQos = 5.0;
    ControlAction A = C->onPhaseComplete(Obs);
    EXPECT_TRUE(A.RejectedDegraded);
    uint64_t Delta = Degraded.value() - Before;
    EXPECT_GT(Delta, 0u);
    if (Round == 0)
      FirstDelta = Delta;
    else
      EXPECT_EQ(Delta, FirstDelta);
    FaultRegistry::global().clear();
  }
}

//===----------------------------------------------------------------------===//
// The tail re-solve primitive under the controller
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, TailSolveAtPhaseZeroIsBitIdenticalToFullSolve) {
  const OpproxRuntime &Rt = testRuntime();
  OptimizationResult Full = Rt.optimizeDetailed(testInput(), 10.0);
  Expected<OptimizationResult> Tail =
      Rt.tryOptimizeTail(testInput(), 10.0, 0);
  ASSERT_TRUE(static_cast<bool>(Tail)) << Tail.error().message();
  EXPECT_EQ(Tail->Schedule.toString(), Full.Schedule.toString());
  ASSERT_EQ(Tail->Decisions.size(), Full.Decisions.size());
  for (size_t P = 0; P < Full.Decisions.size(); ++P) {
    EXPECT_EQ(Tail->Decisions[P].Levels, Full.Decisions[P].Levels);
    EXPECT_TRUE(bitEqual(Tail->Decisions[P].PredictedQos,
                         Full.Decisions[P].PredictedQos))
        << "phase " << P;
  }
}

TEST_F(ControllerSimTest, TailSolvesPinExecutedPhasesExactPerFirstPhase) {
  // Different FirstPhase values must come back from distinct cache
  // entries: each pins exactly the phases before it to level 0.
  const OpproxRuntime &Rt = testRuntime();
  for (size_t First = 1; First < Rt.numPhases(); ++First) {
    Expected<OptimizationResult> Tail =
        Rt.tryOptimizeTail(testInput(), 10.0, First);
    ASSERT_TRUE(static_cast<bool>(Tail)) << Tail.error().message();
    for (size_t P = 0; P < First; ++P)
      for (int L : Tail->Schedule.phaseLevels(P))
        EXPECT_EQ(L, 0) << "FirstPhase " << First << " phase " << P;
  }
}

TEST_F(ControllerSimTest, TailSolvePastTheLastPhaseIsAnError) {
  const OpproxRuntime &Rt = testRuntime();
  Expected<OptimizationResult> Tail =
      Rt.tryOptimizeTail(testInput(), 10.0, Rt.numPhases());
  EXPECT_FALSE(static_cast<bool>(Tail));
}

//===----------------------------------------------------------------------===//
// Interval-driven ingestion through the detector
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, IntervalIngestionCoversTheRunWithoutReacting) {
  const OpproxRuntime &Rt = testRuntime();
  const size_t Nominal = 400;
  ControllerOptions Opts;
  Opts.NominalIterations = Nominal;
  Opts.Detect.StaticPhases = Rt.numPhases(); // Replay the offline slicing.
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0, Opts);
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Offline = C->schedule().toString();
  // In-band feedback: the conservative schedule's phases predict 0 (or
  // nearly so) and each interval reports 0 observed QoS.
  for (size_t P = 0; P < Rt.numPhases(); ++P) {
    IntervalSample S;
    S.WorkUnits = 1000;
    S.Iterations = Nominal / Rt.numPhases();
    S.QosDelta = 0.0;
    C->onInterval(S);
  }
  C->finishRun();
  EXPECT_EQ(C->nextPhase(), Rt.numPhases());
  EXPECT_EQ(C->stats().Observations, Rt.numPhases());
  EXPECT_EQ(C->schedule().toString(), Offline);
  EXPECT_EQ(C->detector().numDetectedPhases(), Rt.numPhases());
}

TEST_F(ControllerSimTest, OverrunningSegmentDistrustsThroughIntervals) {
  const OpproxRuntime &Rt = testRuntime();
  const size_t Nominal = 400;
  ControllerOptions Opts;
  Opts.NominalIterations = Nominal;
  Opts.Detect.StaticPhases = Rt.numPhases();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0, Opts);
  ASSERT_TRUE(static_cast<bool>(C));
  // Phase 0's segment burns 5% QoS against an exact (predict-0) phase.
  IntervalSample Hot;
  Hot.WorkUnits = 1000;
  Hot.Iterations = Nominal / Rt.numPhases();
  Hot.QosDelta = 5.0;
  C->onInterval(Hot);
  // The next interval opens phase 1, closing and accounting the hot
  // segment.
  IntervalSample Cold;
  Cold.WorkUnits = 1000;
  Cold.Iterations = Nominal / Rt.numPhases();
  Cold.QosDelta = 0.0;
  ControlAction A = C->onInterval(Cold);
  EXPECT_TRUE(A.Distrusted);
  EXPECT_EQ(C->stats().Distrusts, 1u);
  EXPECT_EQ(C->spentQos(), 5.0);
  EXPECT_EQ(C->nextPhase(), 1u);
}

TEST_F(ControllerSimTest, FinishRunFlushesTheTrailingSegment) {
  const OpproxRuntime &Rt = testRuntime();
  const size_t Nominal = 400;
  ControllerOptions Opts;
  Opts.NominalIterations = Nominal;
  Opts.Detect.StaticPhases = Rt.numPhases();
  Expected<OnlineController> C =
      OnlineController::start(Rt, testInput(), 10.0, Opts);
  ASSERT_TRUE(static_cast<bool>(C));
  IntervalSample S;
  S.WorkUnits = 1000;
  S.Iterations = Nominal; // One segment spanning the whole run.
  S.QosDelta = 1.0;
  C->onInterval(S);
  EXPECT_EQ(C->stats().Observations, 0u); // Still buffered.
  C->finishRun();
  EXPECT_EQ(C->stats().Observations, 1u);
  EXPECT_EQ(C->spentQos(), 1.0);
  EXPECT_EQ(C->nextPhase(), Rt.numPhases());
}

//===----------------------------------------------------------------------===//
// Ground-truth and detected simulations stay deterministic
//===----------------------------------------------------------------------===//

TEST_F(ControllerSimTest, GroundTruthSimReplaysBitForBit) {
  auto App = createApp("pso");
  GoldenCache GoldenA(*App), GoldenB(*App);
  DriftSpec D = drift(DriftSpec::Kind::Sudden, 2.0, 0.0);
  Expected<SimOutcome> A = runGroundTruthSim(
      *App, GoldenA, testRuntime(), testInput(), 10.0, D);
  Expected<SimOutcome> B = runGroundTruthSim(
      *App, GoldenB, testRuntime(), testInput(), 10.0, D);
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_TRUE(sameDecisions(*A, *B));
  EXPECT_TRUE(bitEqual(A->OfflineQos, B->OfflineQos));
}

TEST_F(ControllerSimTest, DetectedSimSegmentsTheRunAndReplaysBitForBit) {
  auto App = createApp("pso");
  GoldenCache GoldenA(*App), GoldenB(*App);
  DriftSpec D = drift(DriftSpec::Kind::Sudden, 2.0, 0.0);
  Expected<SimOutcome> A = runDetectedSim(
      *App, GoldenA, testRuntime(), testInput(), 10.0, D);
  Expected<SimOutcome> B = runDetectedSim(
      *App, GoldenB, testRuntime(), testInput(), 10.0, D);
  ASSERT_TRUE(static_cast<bool>(A)) << A.error().message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.error().message();
  EXPECT_TRUE(sameDecisions(*A, *B));
  EXPECT_EQ(A->DetectedPhases, B->DetectedPhases);
  EXPECT_GT(A->DetectedPhases, 0u);
}
