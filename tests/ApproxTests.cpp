//===- tests/ApproxTests.cpp - approximation runtime tests ----------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "approx/ApproximableBlock.h"
#include "approx/CallContextLog.h"
#include "approx/PhaseSchedule.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include <gtest/gtest.h>
#include <set>

using namespace opprox;

//===----------------------------------------------------------------------===//
// PhaseMap
//===----------------------------------------------------------------------===//

TEST(PhaseMapTest, EqualSplitWithRemainderToLast) {
  // 10 iterations, 4 phases: base length 2, remainder in the last.
  PhaseMap PM(10, 4);
  EXPECT_EQ(PM.phaseOf(0), 0u);
  EXPECT_EQ(PM.phaseOf(1), 0u);
  EXPECT_EQ(PM.phaseOf(2), 1u);
  EXPECT_EQ(PM.phaseOf(5), 2u);
  EXPECT_EQ(PM.phaseOf(6), 3u);
  EXPECT_EQ(PM.phaseOf(9), 3u);
  EXPECT_EQ(PM.phaseRange(0), (std::pair<size_t, size_t>{0, 2}));
  EXPECT_EQ(PM.phaseRange(3), (std::pair<size_t, size_t>{6, 10}));
}

TEST(PhaseMapTest, OverrunIterationsLandInLastPhase) {
  // The paper's Fig. 3: approximate runs may exceed the nominal count.
  PhaseMap PM(100, 4);
  EXPECT_EQ(PM.phaseOf(99), 3u);
  EXPECT_EQ(PM.phaseOf(100), 3u);
  EXPECT_EQ(PM.phaseOf(500), 3u);
}

TEST(PhaseMapTest, SplitWorkByPhaseFollowsPhaseOf) {
  // 10 iterations, 4 phases: lengths 2/2/2/4 (remainder to the last).
  PhaseMap PM(10, 4);
  std::vector<uint64_t> Work = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<uint64_t> ByPhase = PM.splitWorkByPhase(Work);
  ASSERT_EQ(ByPhase.size(), 4u);
  EXPECT_EQ(ByPhase[0], 1u + 2u);
  EXPECT_EQ(ByPhase[1], 3u + 4u);
  EXPECT_EQ(ByPhase[2], 5u + 6u);
  EXPECT_EQ(ByPhase[3], 7u + 8u + 9u + 10u);
}

TEST(PhaseMapTest, SplitWorkByPhaseRoutesOverrunToTheLastPhase) {
  // A 12-entry trace over a 10-iteration nominal run: the two overrun
  // iterations belong to the final phase, matching phaseOf().
  PhaseMap PM(10, 4);
  std::vector<uint64_t> Work(12, 1);
  std::vector<uint64_t> ByPhase = PM.splitWorkByPhase(Work);
  ASSERT_EQ(ByPhase.size(), 4u);
  EXPECT_EQ(ByPhase[3], 4u + 2u);
  uint64_t Sum = 0;
  for (uint64_t W : ByPhase)
    Sum += W;
  EXPECT_EQ(Sum, 12u); // Nothing lost, nothing double-counted.
}

TEST(PhaseMapTest, SplitWorkByPhaseOfShortTraceLeavesTailPhasesEmpty) {
  PhaseMap PM(10, 4);
  std::vector<uint64_t> Work = {5, 5, 5}; // Run aborted in phase 1.
  std::vector<uint64_t> ByPhase = PM.splitWorkByPhase(Work);
  ASSERT_EQ(ByPhase.size(), 4u);
  EXPECT_EQ(ByPhase[0], 10u);
  EXPECT_EQ(ByPhase[1], 5u);
  EXPECT_EQ(ByPhase[2], 0u);
  EXPECT_EQ(ByPhase[3], 0u);
}

TEST(PhaseMapTest, SinglePhaseCoversEverything) {
  PhaseMap PM(50, 1);
  EXPECT_EQ(PM.phaseOf(0), 0u);
  EXPECT_EQ(PM.phaseOf(49), 0u);
  EXPECT_EQ(PM.phaseRange(0), (std::pair<size_t, size_t>{0, 50}));
}

TEST(PhaseMapTest, MorePhasesThanIterations) {
  PhaseMap PM(2, 8);
  for (size_t I = 0; I < 2; ++I)
    EXPECT_LT(PM.phaseOf(I), 8u);
}

TEST(PhaseMapTest, PhasesPartitionNominalRange) {
  PhaseMap PM(923, 4);
  size_t Covered = 0;
  for (size_t P = 0; P < 4; ++P) {
    auto [Begin, End] = PM.phaseRange(P);
    EXPECT_EQ(Begin, Covered);
    Covered = End;
  }
  EXPECT_EQ(Covered, 923u);
}

//===----------------------------------------------------------------------===//
// PhaseSchedule
//===----------------------------------------------------------------------===//

TEST(ScheduleTest, DefaultIsExact) {
  PhaseSchedule S(4, 3);
  EXPECT_TRUE(S.isExact());
  EXPECT_TRUE(S.isUniform());
  EXPECT_EQ(S.level(2, 1), 0);
}

TEST(ScheduleTest, UniformSetsEveryPhase) {
  PhaseSchedule S = PhaseSchedule::uniform(3, {1, 2});
  EXPECT_TRUE(S.isUniform());
  EXPECT_FALSE(S.isExact());
  for (size_t P = 0; P < 3; ++P) {
    EXPECT_EQ(S.level(P, 0), 1);
    EXPECT_EQ(S.level(P, 1), 2);
  }
}

TEST(ScheduleTest, SinglePhaseLeavesOthersExact) {
  PhaseSchedule S = PhaseSchedule::singlePhase(4, 2, {3, 0, 5});
  EXPECT_FALSE(S.isUniform());
  EXPECT_EQ(S.level(2, 0), 3);
  EXPECT_EQ(S.level(2, 2), 5);
  for (size_t P : {0u, 1u, 3u})
    for (size_t B = 0; B < 3; ++B)
      EXPECT_EQ(S.level(P, B), 0);
}

TEST(ScheduleTest, PhaseLevelsRoundTrip) {
  PhaseSchedule S(2, 3);
  S.setPhaseLevels(1, {4, 5, 6});
  EXPECT_EQ(S.phaseLevels(1), (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(S.phaseLevels(0), (std::vector<int>{0, 0, 0}));
}

TEST(ScheduleTest, ToStringFormat) {
  PhaseSchedule S = PhaseSchedule::singlePhase(2, 0, {1, 2});
  EXPECT_EQ(S.toString(), "[1,2 | 0,0]");
}

//===----------------------------------------------------------------------===//
// Techniques
//===----------------------------------------------------------------------===//

TEST(TechniqueTest, PerforationLevelZeroRunsAll) {
  std::vector<size_t> Ran;
  perforatedLoop(7, 0, [&](size_t I) { Ran.push_back(I); });
  EXPECT_EQ(Ran.size(), 7u);
}

TEST(TechniqueTest, PerforationStride) {
  std::vector<size_t> Ran;
  perforatedLoop(10, 2, [&](size_t I) { Ran.push_back(I); });
  EXPECT_EQ(Ran, (std::vector<size_t>{0, 3, 6, 9}));
}

TEST(TechniqueTest, RotatingPerforationCoversAllWithinStride) {
  // Over Level+1 consecutive outer iterations, every index executes
  // exactly once.
  int Level = 3;
  std::set<size_t> Seen;
  for (size_t Outer = 0; Outer < 4; ++Outer)
    rotatingPerforatedLoop(20, Level, Outer,
                           [&](size_t I) { EXPECT_TRUE(Seen.insert(I).second); });
  EXPECT_EQ(Seen.size(), 20u);
}

TEST(TechniqueTest, RotatingMatchesPlainAtLevelZero) {
  std::vector<size_t> A, B;
  perforatedLoop(9, 0, [&](size_t I) { A.push_back(I); });
  rotatingPerforatedLoop(9, 0, 5, [&](size_t I) { B.push_back(I); });
  EXPECT_EQ(A, B);
}

TEST(TechniqueTest, TruncationDropCounts) {
  EXPECT_EQ(truncationDrop(100, 0, 5), 0u);
  EXPECT_EQ(truncationDrop(100, 5, 5), 50u); // Max level drops half.
  EXPECT_EQ(truncationDrop(100, 1, 5), 10u);
  EXPECT_EQ(truncationDrop(10, 3, 5), 3u);
}

TEST(TechniqueTest, TruncatedLoopDropsTail) {
  std::vector<size_t> Ran;
  truncatedLoop(10, 5, 5, [&](size_t I) { Ran.push_back(I); });
  EXPECT_EQ(Ran, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(TechniqueTest, MemoizationRecomputePattern) {
  std::vector<size_t> Computed, Reused;
  memoizedLoop<int>(
      10, 2,
      [&](size_t I) {
        Computed.push_back(I);
        return static_cast<int>(I);
      },
      [&](size_t I, int Cached) {
        Reused.push_back(I);
        EXPECT_EQ(Cached, static_cast<int>(Computed.back()));
      });
  EXPECT_EQ(Computed, (std::vector<size_t>{0, 3, 6, 9}));
  EXPECT_EQ(Reused.size(), 6u);
}

TEST(TechniqueTest, MemoizationLevelZeroAlwaysComputes) {
  size_t Computes = 0, Reuses = 0;
  memoizedLoop<int>(
      5, 0, [&](size_t) { return ++Computes, 0; },
      [&](size_t, int) { ++Reuses; });
  EXPECT_EQ(Computes, 5u);
  EXPECT_EQ(Reuses, 0u);
}

TEST(TechniqueTest, TunedParameterScalesDown) {
  EXPECT_EQ(tunedParameter(100, 0), 100u);
  EXPECT_EQ(tunedParameter(100, 3), 70u);
  EXPECT_EQ(tunedParameter(100, 5), 50u);
  EXPECT_GE(tunedParameter(10, 5), 1u);
  EXPECT_EQ(tunedParameter(1, 5), 1u); // Never reaches zero.
}

//===----------------------------------------------------------------------===//
// WorkCounter
//===----------------------------------------------------------------------===//

TEST(WorkTest, AccumulatesAndMarks) {
  WorkCounter WC;
  WC.add(5);
  uint64_t Mark = WC.total();
  WC.add(7);
  EXPECT_EQ(WC.total(), 12u);
  EXPECT_EQ(WC.since(Mark), 7u);
  WC.reset();
  EXPECT_EQ(WC.total(), 0u);
}

TEST(ScheduleTest, OverlayTailGraftsOnlyTheRemainingPhases) {
  // The controller's correction primitive: executed phases keep their
  // history, phases from FirstPhase on adopt the re-solve's levels.
  PhaseSchedule Base = PhaseSchedule::uniform(4, {1, 1});
  PhaseSchedule Tail(4, 2);
  for (size_t P = 0; P < 4; ++P)
    Tail.setPhaseLevels(P, {3, 4});
  Base.overlayTail(Tail, 2);
  EXPECT_EQ(Base.phaseLevels(0), (std::vector<int>{1, 1}));
  EXPECT_EQ(Base.phaseLevels(1), (std::vector<int>{1, 1}));
  EXPECT_EQ(Base.phaseLevels(2), (std::vector<int>{3, 4}));
  EXPECT_EQ(Base.phaseLevels(3), (std::vector<int>{3, 4}));
}

TEST(ScheduleTest, OverlayTailAtPhaseZeroReplacesEverything) {
  PhaseSchedule Base = PhaseSchedule::uniform(3, {2});
  PhaseSchedule Tail = PhaseSchedule::uniform(3, {5});
  Base.overlayTail(Tail, 0);
  EXPECT_EQ(Base.toString(), Tail.toString());
}

TEST(ScheduleTest, OverlayTailPastTheEndIsANoOp) {
  PhaseSchedule Base = PhaseSchedule::uniform(3, {2});
  std::string Before = Base.toString();
  PhaseSchedule Tail = PhaseSchedule::uniform(3, {5});
  Base.overlayTail(Tail, 3);
  EXPECT_EQ(Base.toString(), Before);
}

TEST(WorkTest, TakeIntervalPartitionsTheTotal) {
  // The online observation hook: successive takeInterval() calls slice
  // one run's work into disjoint interval samples that sum to total().
  WorkCounter WC;
  WC.add(10);
  EXPECT_EQ(WC.takeInterval(), 10u);
  WC.add(3);
  WC.add(4);
  EXPECT_EQ(WC.takeInterval(), 7u);
  EXPECT_EQ(WC.takeInterval(), 0u); // Nothing accrued since the mark.
  WC.add(5);
  EXPECT_EQ(WC.takeInterval(), 5u);
  EXPECT_EQ(WC.total(), 22u); // The mark never disturbs the total.
}

TEST(WorkTest, ResetClearsTheIntervalMark) {
  WorkCounter WC;
  WC.add(9);
  WC.takeInterval();
  WC.reset();
  WC.add(2);
  EXPECT_EQ(WC.takeInterval(), 2u);
}

TEST(WorkTest, SpeedupRatio) {
  EXPECT_DOUBLE_EQ(speedupOf(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(speedupOf(100, 200), 0.5);
  EXPECT_DOUBLE_EQ(speedupOf(0, 50), 1.0);
  EXPECT_DOUBLE_EQ(speedupOf(50, 0), 1.0);
}

//===----------------------------------------------------------------------===//
// ApproximableBlock
//===----------------------------------------------------------------------===//

TEST(BlockTest, ConfigurationCount) {
  std::vector<ApproximableBlock> Blocks = {
      {"a", ApproxTechniqueKind::LoopPerforation, 5},
      {"b", ApproxTechniqueKind::Memoization, 3},
  };
  EXPECT_EQ(configurationCount(Blocks), 24ull);
  EXPECT_EQ(Blocks[0].numLevels(), 6);
}

TEST(BlockTest, TechniqueNames) {
  EXPECT_STREQ(techniqueName(ApproxTechniqueKind::LoopPerforation),
               "loop perforation");
  EXPECT_STREQ(techniqueName(ApproxTechniqueKind::LoopTruncation),
               "loop truncation");
  EXPECT_STREQ(techniqueName(ApproxTechniqueKind::Memoization), "memoization");
  EXPECT_STREQ(techniqueName(ApproxTechniqueKind::ParameterTuning),
               "parameter tuning");
}

//===----------------------------------------------------------------------===//
// CallContextLog
//===----------------------------------------------------------------------===//

TEST(LogTest, IterationAccounting) {
  CallContextLog Log;
  Log.beginIteration();
  Log.recordBlock(0, 10);
  Log.recordBlock(1, 5);
  Log.beginIteration();
  Log.recordBlock(0, 3);
  EXPECT_EQ(Log.numIterations(), 2u);
  EXPECT_EQ(Log.workInIteration(0), 15u);
  EXPECT_EQ(Log.workInIteration(1), 3u);
  EXPECT_EQ(Log.blocksInIteration(0), (std::vector<size_t>{0, 1}));
}

TEST(LogTest, SignatureOfStableFlow) {
  CallContextLog Log;
  for (int I = 0; I < 3; ++I) {
    Log.beginIteration();
    Log.recordBlock(0, 1);
    Log.recordBlock(2, 1);
  }
  EXPECT_EQ(Log.signature(), "0,2");
}

TEST(LogTest, SignatureCapturesDistinctFlows) {
  CallContextLog Log;
  Log.beginIteration();
  Log.recordBlock(0, 1);
  Log.recordBlock(1, 1);
  Log.beginIteration();
  Log.recordBlock(1, 1);
  Log.recordBlock(0, 1);
  EXPECT_EQ(Log.signature(), "0,1;1,0");
}

TEST(LogTest, WorkInRangeClamps) {
  CallContextLog Log;
  for (uint64_t W : {2u, 3u, 5u}) {
    Log.beginIteration();
    Log.recordBlock(0, W);
  }
  EXPECT_EQ(Log.workInRange(0, 3), 10u);
  EXPECT_EQ(Log.workInRange(1, 2), 3u);
  EXPECT_EQ(Log.workInRange(1, 100), 8u);
  EXPECT_EQ(Log.workInRange(5, 9), 0u);
}

TEST(LogTest, ClearResets) {
  CallContextLog Log;
  Log.beginIteration();
  Log.recordBlock(0, 1);
  Log.clear();
  EXPECT_EQ(Log.numIterations(), 0u);
  EXPECT_EQ(Log.signature(), "");
}
