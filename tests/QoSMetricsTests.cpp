//===- tests/QoSMetricsTests.cpp - QoS metric tests -----------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/QoSMetrics.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace opprox;

TEST(DistortionTest, IdenticalIsZero) {
  std::vector<double> V = {1, 2, 3};
  EXPECT_DOUBLE_EQ(relativeDistortionPercent(V, V), 0.0);
  EXPECT_DOUBLE_EQ(weightedDistortionPercent(V, V), 0.0);
}

TEST(DistortionTest, KnownRelativeError) {
  // 10% error on every equal-magnitude component -> 10%.
  std::vector<double> E = {10, 10, 10};
  std::vector<double> A = {11, 11, 11};
  EXPECT_NEAR(relativeDistortionPercent(E, A), 10.0, 1e-9);
}

TEST(DistortionTest, MeanFloorShieldsTinyComponents) {
  // One near-zero exact component with small absolute error must not
  // blow up the metric: its scale is floored at the mean magnitude.
  std::vector<double> E = {100.0, 1e-12};
  std::vector<double> A = {100.0, 0.5};
  EXPECT_LT(relativeDistortionPercent(E, A), 5.0);
}

TEST(DistortionTest, ClampsAtThousand) {
  std::vector<double> E = {1.0};
  std::vector<double> A = {1e9};
  EXPECT_DOUBLE_EQ(relativeDistortionPercent(E, A), 1000.0);
}

TEST(DistortionTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(relativeDistortionPercent({}, {}), 0.0);
}

TEST(DistortionTest, WeightedEmphasizesLargeComponents) {
  // Same relative error everywhere: weighted == unweighted.
  std::vector<double> E = {10, 1};
  std::vector<double> A = {11, 1.1};
  EXPECT_NEAR(weightedDistortionPercent(E, A), 10.0, 1e-9);
  // An error on the large component counts more under weighting (the
  // paper: bigger body parts influence the metric more).
  std::vector<double> A3 = {11, 1};
  EXPECT_GT(weightedDistortionPercent(E, A3),
            relativeDistortionPercent(E, A3));
}

TEST(PsnrTest, IdenticalIsCeiling) {
  std::vector<double> V = {0, 128, 255};
  EXPECT_DOUBLE_EQ(psnr(V, V, 255.0), 99.0);
}

TEST(PsnrTest, KnownMse) {
  // Uniform error of 25.5 on peak 255: PSNR = 20*log10(255/25.5) = 20 dB.
  std::vector<double> E = {100, 100};
  std::vector<double> A = {125.5, 74.5};
  EXPECT_NEAR(psnr(E, A, 255.0), 20.0, 1e-9);
}

TEST(PsnrTest, MoreErrorLowerPsnr) {
  std::vector<double> E = {100, 100, 100};
  std::vector<double> Small = {101, 99, 100};
  std::vector<double> Big = {150, 50, 100};
  EXPECT_GT(psnr(E, Small, 255.0), psnr(E, Big, 255.0));
}

TEST(PsnrTest, DegradationConversionRoundTrip) {
  for (double Db : {10.0, 20.0, 30.0, 45.0}) {
    double Pct = psnrToDegradationPercent(Db);
    EXPECT_NEAR(degradationPercentToPsnr(Pct), Db, 1e-9);
  }
}

TEST(PsnrTest, ConversionAnchors) {
  // The budget mapping used throughout: 20 dB ~ 10% degradation.
  EXPECT_NEAR(psnrToDegradationPercent(20.0), 10.0, 1e-9);
  EXPECT_NEAR(psnrToDegradationPercent(40.0), 1.0, 1e-9);
  // Higher PSNR always means less degradation.
  EXPECT_LT(psnrToDegradationPercent(30.0), psnrToDegradationPercent(10.0));
}
