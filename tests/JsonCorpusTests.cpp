//===- tests/JsonCorpusTests.cpp - Malformed-input corpus runner ----------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs every file in tests/corpus/json/ through the JSON parser and the
// artifact deserializer. Each corpus file is a hand-written malformed
// document (truncations, overflow numbers, pathological nesting, broken
// UTF-8, duplicate keys, ...); the contract under test is that malformed
// bytes always come back as a clean Expected error -- never a crash, a
// hang, or a silently accepted value. New regression inputs are added by
// dropping a file into the corpus directory; no code change needed.
//
//===----------------------------------------------------------------------===//

#include "core/ModelArtifact.h"
#include "support/Json.h"
#include <algorithm>
#include <filesystem>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace opprox;

#ifndef OPPROX_TEST_CORPUS_DIR
#error "OPPROX_TEST_CORPUS_DIR must point at tests/corpus/json"
#endif

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(OPPROX_TEST_CORPUS_DIR))
    if (Entry.is_regular_file())
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &Path) {
  Expected<std::string> Text = readFile(Path.string());
  EXPECT_TRUE(static_cast<bool>(Text)) << Path;
  return Text ? *Text : std::string();
}

class JsonCorpusTest : public ::testing::TestWithParam<std::filesystem::path> {
};

std::string paramName(
    const ::testing::TestParamInfo<std::filesystem::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST(JsonCorpusSuite, CorpusDirectoryIsPopulated) {
  // Guards against a path typo silently instantiating zero cases.
  EXPECT_GE(corpusFiles().size(), 15u);
}

TEST_P(JsonCorpusTest, ParserRejectsWithCleanError) {
  std::string Text = slurp(GetParam());
  Expected<Json> Parsed = Json::parse(Text);
  ASSERT_FALSE(static_cast<bool>(Parsed))
      << GetParam() << " parsed successfully but must be rejected";
  EXPECT_FALSE(Parsed.error().message().empty()) << GetParam();
  EXPECT_NE(Parsed.error().message().find("JSON parse error"),
            std::string::npos)
      << GetParam() << ": " << Parsed.error().message();
}

TEST_P(JsonCorpusTest, ParserIsDeterministic) {
  std::string Text = slurp(GetParam());
  Expected<Json> First = Json::parse(Text);
  Expected<Json> Second = Json::parse(Text);
  ASSERT_FALSE(static_cast<bool>(First)) << GetParam();
  ASSERT_FALSE(static_cast<bool>(Second)) << GetParam();
  EXPECT_EQ(First.error().message(), Second.error().message()) << GetParam();
}

TEST_P(JsonCorpusTest, ArtifactDeserializerRejectsWithCleanError) {
  // The full artifact pipeline wraps the same parser; malformed bytes
  // must surface as an Expected error at this layer too.
  std::string Text = slurp(GetParam());
  Expected<OpproxArtifact> Artifact = OpproxArtifact::deserialize(Text);
  ASSERT_FALSE(static_cast<bool>(Artifact))
      << GetParam() << " deserialized successfully but must be rejected";
  EXPECT_FALSE(Artifact.error().message().empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, JsonCorpusTest,
                         ::testing::ValuesIn(corpusFiles()), paramName);
