//===- tests/PropertyTests.cpp - parameterized property sweeps ------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Property-style invariants swept over sizes/levels/shapes with TEST_P,
// complementing the example-based tests elsewhere.
//
//===----------------------------------------------------------------------===//

#include "approx/PhaseSchedule.h"
#include "approx/Techniques.h"
#include "apps/AppRegistry.h"
#include "control/ControlSim.h"
#include "core/ModelArtifact.h"
#include "core/OfflineTrainer.h"
#include "core/OpproxRuntime.h"
#include "core/Sampler.h"
#include "linalg/Decompositions.h"
#include "ml/Mic.h"
#include "ml/PolynomialRegression.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <numeric>

using namespace opprox;

//===----------------------------------------------------------------------===//
// PhaseMap properties over many (iterations, phases) shapes
//===----------------------------------------------------------------------===//

class PhaseMapProperty
    : public testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PhaseMapProperty, PhasesAreMonotoneAndExhaustive) {
  auto [Iters, Phases] = GetParam();
  PhaseMap PM(Iters, Phases);
  size_t Prev = 0;
  for (size_t I = 0; I < Iters; ++I) {
    size_t P = PM.phaseOf(I);
    EXPECT_GE(P, Prev) << "phase index must never decrease";
    EXPECT_LT(P, Phases);
    Prev = P;
  }
  // phaseOf agrees with phaseRange.
  for (size_t P = 0; P < Phases; ++P) {
    auto [Begin, End] = PM.phaseRange(P);
    for (size_t I = Begin; I < End && I < Iters; ++I) {
      EXPECT_EQ(PM.phaseOf(I), P);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PhaseMapProperty,
    testing::Values(std::pair<size_t, size_t>{1, 1},
                    std::pair<size_t, size_t>{7, 2},
                    std::pair<size_t, size_t>{8, 8},
                    std::pair<size_t, size_t>{100, 3},
                    std::pair<size_t, size_t>{923, 4},
                    std::pair<size_t, size_t>{5, 8},
                    std::pair<size_t, size_t>{1000, 7}));

//===----------------------------------------------------------------------===//
// Technique coverage properties over levels
//===----------------------------------------------------------------------===//

class LevelProperty : public testing::TestWithParam<int> {};

TEST_P(LevelProperty, PerforationExecutesCeilDiv) {
  int Level = GetParam();
  for (size_t N : {1u, 2u, 10u, 97u}) {
    size_t Count = 0;
    perforatedLoop(N, Level, [&](size_t) { ++Count; });
    size_t Stride = static_cast<size_t>(Level) + 1;
    EXPECT_EQ(Count, (N + Stride - 1) / Stride);
  }
}

TEST_P(LevelProperty, RotatingPerforationSameCountEveryIteration) {
  int Level = GetParam();
  size_t Stride = static_cast<size_t>(Level) + 1;
  for (size_t Outer = 0; Outer < 3 * Stride; ++Outer) {
    size_t Count = 0;
    rotatingPerforatedLoop(60, Level, Outer, [&](size_t) { ++Count; });
    // 60 is divisible by 1..6, so every offset executes 60/stride.
    EXPECT_EQ(Count, 60u / Stride);
  }
}

TEST_P(LevelProperty, TruncationNeverDropsMoreThanHalf) {
  int Level = GetParam();
  for (size_t N : {4u, 10u, 1000u}) {
    size_t Drop = truncationDrop(N, Level, 5);
    EXPECT_LE(Drop, N / 2);
    if (Level == 0) {
      EXPECT_EQ(Drop, 0u);
    }
  }
}

TEST_P(LevelProperty, MemoizationComputeFractionMatchesPeriod) {
  int Level = GetParam();
  size_t Computes = 0, Reuses = 0;
  memoizedLoop<int>(
      120, Level, [&](size_t) { return static_cast<int>(++Computes); },
      [&](size_t, int) { ++Reuses; });
  EXPECT_EQ(Computes + Reuses, 120u);
  size_t Period = static_cast<size_t>(Level) + 1;
  EXPECT_EQ(Computes, (120 + Period - 1) / Period);
}

TEST_P(LevelProperty, TunedParameterMonotoneInLevel) {
  int Level = GetParam();
  if (Level == 0)
    return;
  EXPECT_LE(tunedParameter(100, Level), tunedParameter(100, Level - 1));
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelProperty, testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Schedule properties
//===----------------------------------------------------------------------===//

class ScheduleProperty : public testing::TestWithParam<size_t> {};

TEST_P(ScheduleProperty, UniformOfExactLevelsIsExact) {
  size_t Phases = GetParam();
  std::vector<int> Zero(3, 0);
  EXPECT_TRUE(PhaseSchedule::uniform(Phases, Zero).isExact());
}

TEST_P(ScheduleProperty, SinglePhaseTouchesOnlyThatPhase) {
  size_t Phases = GetParam();
  for (size_t Target = 0; Target < Phases; ++Target) {
    PhaseSchedule S = PhaseSchedule::singlePhase(Phases, Target, {1, 2, 3});
    for (size_t P = 0; P < Phases; ++P)
      for (size_t B = 0; B < 3; ++B)
        EXPECT_EQ(S.level(P, B), P == Target ? static_cast<int>(B) + 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(PhaseCounts, ScheduleProperty,
                         testing::Values(1u, 2u, 4u, 8u));

//===----------------------------------------------------------------------===//
// Sampler properties over block shapes
//===----------------------------------------------------------------------===//

class SamplerProperty
    : public testing::TestWithParam<std::vector<int>> {};

TEST_P(SamplerProperty, LocalCountIsSumOfLevels) {
  Rng R(99);
  const std::vector<int> &Max = GetParam();
  SamplingPlan Plan = makeSamplingPlan(Max, 7, R);
  EXPECT_EQ(Plan.LocalConfigs.size(),
            static_cast<size_t>(std::accumulate(Max.begin(), Max.end(), 0)));
  EXPECT_EQ(Plan.JointConfigs.size(), 7u);
}

TEST_P(SamplerProperty, EnumerationMatchesProduct) {
  const std::vector<int> &Max = GetParam();
  size_t Want = 1;
  for (int M : Max)
    Want *= static_cast<size_t>(M) + 1;
  EXPECT_EQ(enumerateAllConfigs(Max).size(), Want);
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, SamplerProperty,
    testing::Values(std::vector<int>{1}, std::vector<int>{5, 5},
                    std::vector<int>{5, 5, 5}, std::vector<int>{2, 3, 4},
                    std::vector<int>{5, 5, 5, 5}));

//===----------------------------------------------------------------------===//
// QR round-trip property under scaling
//===----------------------------------------------------------------------===//

class QrScaleProperty : public testing::TestWithParam<double> {};

TEST_P(QrScaleProperty, SolutionInvariantUnderRhsScaling) {
  double Scale = GetParam();
  Rng R(7);
  Matrix A(12, 4);
  for (size_t I = 0; I < 12; ++I)
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
  std::vector<double> X0 = {1, -1, 2, 0.5};
  std::vector<double> B = A.multiply(X0);
  for (double &V : B)
    V *= Scale;
  auto X = QrDecomposition(A).solve(B);
  ASSERT_TRUE(X.has_value());
  for (size_t J = 0; J < 4; ++J)
    EXPECT_NEAR((*X)[J], X0[J] * Scale, 1e-8 * std::max(1.0, Scale));
}

INSTANTIATE_TEST_SUITE_P(Scales, QrScaleProperty,
                         testing::Values(1e-6, 1.0, 1e6));

//===----------------------------------------------------------------------===//
// MIC invariance properties
//===----------------------------------------------------------------------===//

TEST(MicProperty, InvariantUnderMonotoneTransforms) {
  // MIC of (x, y) equals MIC of (f(x), y) for strictly monotone f,
  // because equal-frequency bins only see order.
  Rng R(21);
  std::vector<double> X, Y, X3;
  for (int I = 0; I < 300; ++I) {
    double V = R.uniform(0.1, 3.0);
    X.push_back(V);
    X3.push_back(V * V * V);
    Y.push_back(std::sin(2.0 * V));
  }
  EXPECT_NEAR(mic(X, Y), mic(X3, Y), 1e-12);
}

TEST(MicProperty, SymmetricInArguments) {
  Rng R(22);
  std::vector<double> X, Y;
  for (int I = 0; I < 200; ++I) {
    double V = R.uniform(-1, 1);
    X.push_back(V);
    Y.push_back(V * V + R.gaussian(0, 0.05));
  }
  EXPECT_NEAR(mic(X, Y), mic(Y, X), 0.15); // Grid budget differs per axis.
}

//===----------------------------------------------------------------------===//
// Regression scaling property
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Artifact round-trip property over adversarial double bit patterns
//===----------------------------------------------------------------------===//

namespace {

/// One cheaply trained artifact shared by every round-trip seed; each
/// seed perturbs a copy, so training cost is paid once.
const OpproxArtifact &roundTripBaseArtifact() {
  static const OpproxArtifact Art = [] {
    auto App = createApp("pso");
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 6;
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
    return std::move(OfflineTrainer::train(*App, Opts).Artifact);
  }();
  return Art;
}

/// A finite double drawn uniformly from the raw bit-pattern space --
/// subnormals, extreme exponents, negative zero -- far nastier for
/// shortest-round-trip formatting than uniform() values.
double finiteFromBits(Rng &R) {
  for (;;) {
    uint64_t Bits = R.next();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    if (std::isfinite(V))
      return V;
  }
}

} // namespace

TEST(ArtifactRoundTripProperty, SerializationIsBitExactAcross200Seeds) {
  // The artifact contract (ModelArtifact.h) promises doubles survive
  // serialize -> deserialize bit-exactly; serializing the reloaded
  // artifact must therefore reproduce the original bytes. Sweep 200
  // seeded variants of the input/provenance fields to probe the
  // formatter across the double space, not just training-shaped values.
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng R(deriveSeed(0xA57EFAC7u, Seed));
    OpproxArtifact Art = roundTripBaseArtifact();
    for (double &V : Art.DefaultInput)
      V = finiteFromBits(R);
    Art.Provenance.ProfileSeed = R.next();
    Art.Provenance.ModelSeed = R.next();
    Art.Provenance.TrainingRuns = static_cast<size_t>(R.below(1u << 20));

    std::string First = Art.serialize();
    Expected<OpproxArtifact> Reloaded = OpproxArtifact::deserialize(First);
    ASSERT_TRUE(static_cast<bool>(Reloaded))
        << "seed " << Seed << ": " << Reloaded.error().message();
    std::string Second = Reloaded->serialize();
    ASSERT_EQ(First, Second) << "round-trip changed bytes at seed " << Seed;
    // And the reloaded doubles themselves are bitwise identical.
    ASSERT_EQ(Art.DefaultInput.size(), Reloaded->DefaultInput.size());
    for (size_t I = 0; I < Art.DefaultInput.size(); ++I)
      EXPECT_EQ(std::memcmp(&Art.DefaultInput[I], &Reloaded->DefaultInput[I],
                            sizeof(double)),
                0)
          << "seed " << Seed << " input " << I;
  }
}

TEST(ScheduleRoundTripProperty, JsonIsLosslessAcross200Seeds) {
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng R(deriveSeed(0x5C4ED11Eu, Seed));
    PhaseSchedule S(1 + R.below(8), 1 + R.below(6));
    for (size_t P = 0; P < S.numPhases(); ++P)
      for (size_t B = 0; B < S.numBlocks(); ++B)
        S.setLevel(P, B, static_cast<int>(R.below(10)));

    std::string First = S.toJson().dump(2);
    Expected<Json> Parsed = Json::parse(First);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << "seed " << Seed;
    Expected<PhaseSchedule> Reloaded = PhaseSchedule::fromJson(*Parsed);
    ASSERT_TRUE(static_cast<bool>(Reloaded))
        << "seed " << Seed << ": " << Reloaded.error().message();
    ASSERT_EQ(First, Reloaded->toJson().dump(2)) << "seed " << Seed;
    ASSERT_EQ(S.toString(), Reloaded->toString()) << "seed " << Seed;
  }
}

TEST(RegressionProperty, PredictionScalesWithTarget) {
  Rng R(31);
  Dataset D({"x"}), D10({"x"});
  for (int I = 0; I < 60; ++I) {
    double X = R.uniform(-2, 2);
    double T = 1 + X + X * X;
    D.addSample({X}, T);
    D10.addSample({X}, 10 * T);
  }
  PolynomialRegression::Options O;
  O.Degree = 2;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  PolynomialRegression M10 = PolynomialRegression::fit(D10, O);
  for (double X : {-1.5, 0.0, 0.7})
    EXPECT_NEAR(10 * M.predict({X}), M10.predict({X}), 1e-6);
}

//===----------------------------------------------------------------------===//
// Online control: the zero-drift no-op guarantee across apps and seeds
//===----------------------------------------------------------------------===//

class ZeroDriftNoOpProperty : public testing::TestWithParam<const char *> {};

TEST_P(ZeroDriftNoOpProperty, ControllerMatchesOfflineBitForBitAcross50Seeds) {
  // The control loop's anchor invariant (docs/CONTROL.md): when a run's
  // observations match the model exactly -- zero drift -- the online
  // controller never distrusts, never re-solves, and finishes with a
  // schedule bit-identical to the offline pipeline's, for every app and
  // any budget. A controller that reacts to clean feedback would make
  // opting into --online-control a behavior change even for healthy
  // runs.
  auto App = createApp(GetParam());
  OpproxTrainOptions Opts;
  Opts.Profiling.RandomJointSamples = 4;
  OpproxRuntime Rt =
      OpproxRuntime::fromArtifact(OfflineTrainer::train(*App, Opts).Artifact);
  const std::vector<double> Input = Rt.artifact().DefaultInput;
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    Rng R(deriveSeed(0xC047801u, Seed));
    double Budget = R.uniform(0.5, 20.0);
    control::DriftSpec NoDrift; // Kind::None.
    Expected<control::SimOutcome> O =
        control::runScriptedSim(Rt, Input, Budget, NoDrift);
    ASSERT_TRUE(static_cast<bool>(O))
        << "seed " << Seed << ": " << O.error().message();
    ASSERT_EQ(O->FinalSchedule.toString(), O->OfflineSchedule.toString())
        << GetParam() << " seed " << Seed << " budget " << Budget;
    ASSERT_EQ(O->Stats.Distrusts, 0u) << "seed " << Seed;
    ASSERT_EQ(O->Stats.Resolves, 0u) << "seed " << Seed;
    ASSERT_EQ(O->Stats.Corrections, 0u) << "seed " << Seed;
    ASSERT_EQ(std::memcmp(&O->ControlledQos, &O->OfflineQos, sizeof(double)),
              0)
        << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ZeroDriftNoOpProperty,
                         testing::Values("lulesh", "comd", "ffmpeg",
                                         "bodytrack", "pso"));
