//===- tests/TelemetryTests.cpp - observability layer tests ---------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for support/Telemetry and support/Log: histogram
/// percentile math, instrument atomicity under real ThreadPool
/// contention (exercised under the TSan CI preset), deterministic JSON
/// snapshots, and Chrome-trace well-formedness.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <gtest/gtest.h>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Histogram percentiles
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, HistogramBasicAccounting) {
  MetricsRegistry Registry;
  Histogram &H = Registry.histogram("h", {1.0, 2.0, 5.0, 10.0});
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.minValue(), 0.0); // Empty histograms report zeros.
  EXPECT_EQ(H.percentile(50), 0.0);

  for (double V : {0.5, 1.5, 3.0, 7.0, 20.0})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 32.0);
  EXPECT_DOUBLE_EQ(H.minValue(), 0.5);
  EXPECT_DOUBLE_EQ(H.maxValue(), 20.0);
  EXPECT_DOUBLE_EQ(H.mean(), 6.4);

  // One recording per bucket, including the overflow bucket.
  std::vector<uint64_t> Buckets = H.bucketCounts();
  ASSERT_EQ(Buckets.size(), 5u);
  for (uint64_t B : Buckets)
    EXPECT_EQ(B, 1u);
}

TEST(TelemetryTest, HistogramPercentileInterpolation) {
  MetricsRegistry Registry;
  // Unit-width buckets 1..100: value K lands in the bucket with upper
  // bound K, so percentiles are recoverable to within one bucket width.
  std::vector<double> Bounds;
  for (int I = 1; I <= 100; ++I)
    Bounds.push_back(static_cast<double>(I));
  Histogram &H = Registry.histogram("latency", Bounds);
  for (int V = 1; V <= 100; ++V)
    H.record(static_cast<double>(V));

  EXPECT_NEAR(H.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(H.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(H.percentile(99), 99.0, 1.0);
  // The extremes are exact, not interpolated.
  EXPECT_DOUBLE_EQ(H.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(H.percentile(100), 100.0);
  // Monotone in P.
  for (double P = 10; P <= 100; P += 10)
    EXPECT_LE(H.percentile(P - 10), H.percentile(P));
}

TEST(TelemetryTest, HistogramPercentileSingleValueAndOverflow) {
  MetricsRegistry Registry;
  Histogram &H = Registry.histogram("h", {1.0, 10.0});
  H.record(4.0);
  // Every percentile of a single observation is that observation.
  EXPECT_DOUBLE_EQ(H.percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(H.percentile(99), 4.0);

  // Overflow values are clamped to the observed maximum, never the
  // (infinite) bucket edge.
  Histogram &O = Registry.histogram("overflow", {1.0});
  O.record(50.0);
  O.record(70.0);
  EXPECT_LE(O.percentile(99), 70.0);
  EXPECT_GE(O.percentile(99), 50.0);
}

TEST(TelemetryTest, GaugeSetMaxIsHighWater) {
  MetricsRegistry Registry;
  Gauge &G = Registry.gauge("depth");
  G.setMax(3.0);
  G.setMax(1.0); // Lower: ignored.
  EXPECT_DOUBLE_EQ(G.value(), 3.0);
  G.setMax(7.0);
  EXPECT_DOUBLE_EQ(G.value(), 7.0);
  G.set(2.0); // Plain set still overwrites.
  EXPECT_DOUBLE_EQ(G.value(), 2.0);
}

//===----------------------------------------------------------------------===//
// Atomicity under ThreadPool contention (runs under the TSan preset)
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, CountersAtomicUnderThreadPoolContention) {
  MetricsRegistry Registry;
  Counter &C = Registry.counter("contended");
  Histogram &H = Registry.histogram("contended_ms", {1.0, 10.0, 100.0});
  Gauge &G = Registry.gauge("high_water");

  constexpr size_t Tasks = 512;
  constexpr size_t PerTask = 100;
  ThreadPool Pool(8);
  Pool.parallelFor(Tasks, [&](size_t I) {
    for (size_t K = 0; K < PerTask; ++K) {
      C.add();
      H.record(static_cast<double>(I % 200));
      G.setMax(static_cast<double>(I));
    }
  });

  EXPECT_EQ(C.value(), Tasks * PerTask);
  EXPECT_EQ(H.count(), Tasks * PerTask);
  uint64_t BucketTotal = 0;
  for (uint64_t B : H.bucketCounts())
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, Tasks * PerTask);
  EXPECT_DOUBLE_EQ(G.value(), static_cast<double>(Tasks - 1));
}

TEST(TelemetryTest, TraceRecorderConcurrentSpans) {
  TraceRecorder Recorder;
  Recorder.enable();
  constexpr size_t Tasks = 200;
  ThreadPool Pool(8);
  Pool.parallelFor(Tasks, [&](size_t I) {
    TraceSpan Span("task", "test", &Recorder);
    Span.arg("index", static_cast<double>(I));
  });
  EXPECT_EQ(Recorder.eventCount(), Tasks);

  // Thread ids are dense, stable, and start at 1.
  for (const TraceEvent &E : Recorder.events()) {
    EXPECT_GE(E.ThreadId, 1u);
    EXPECT_EQ(E.Name, "task");
  }
}

//===----------------------------------------------------------------------===//
// Deterministic JSON snapshots
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, SnapshotJsonRoundTripsDeterministically) {
  MetricsRegistry Registry;
  Registry.counter("b.count").add(3);
  Registry.counter("a.count").add(1);
  Registry.gauge("queue.max").set(4.5);
  Histogram &H = Registry.histogram("run_ms", {1.0, 10.0});
  H.record(0.5);
  H.record(5.0);
  H.record(50.0);

  std::string First = Registry.snapshotJson().dump(2);
  std::string Second = Registry.snapshotJson().dump(2);
  EXPECT_EQ(First, Second) << "same state must serialize identically";

  Expected<Json> Parsed = Json::parse(First);
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  Expected<std::string> Schema = getString(*Parsed, "schema");
  ASSERT_TRUE(Schema);
  EXPECT_EQ(*Schema, "opprox-metrics-1");

  Expected<const Json *> Counters = getObject(*Parsed, "counters");
  ASSERT_TRUE(Counters);
  // Name-sorted: "a.count" precedes "b.count" regardless of creation
  // order.
  ASSERT_EQ((*Counters)->members().size(), 2u);
  EXPECT_EQ((*Counters)->members()[0].first, "a.count");
  EXPECT_EQ((*Counters)->members()[1].first, "b.count");
  EXPECT_DOUBLE_EQ((*Counters)->members()[1].second.asNumber(), 3.0);

  Expected<const Json *> Hists = getObject(*Parsed, "histograms");
  ASSERT_TRUE(Hists);
  const Json *RunMs = (*Hists)->find("run_ms");
  ASSERT_NE(RunMs, nullptr);
  Expected<double> Count = getNumber(*RunMs, "count");
  ASSERT_TRUE(Count);
  EXPECT_DOUBLE_EQ(*Count, 3.0);
  Expected<double> Sum = getNumber(*RunMs, "sum");
  ASSERT_TRUE(Sum);
  EXPECT_DOUBLE_EQ(*Sum, 55.5);
}

TEST(TelemetryTest, ResetZeroesInPlaceWithoutInvalidatingHandles) {
  MetricsRegistry Registry;
  Counter &C = Registry.counter("c");
  Histogram &H = Registry.histogram("h", {1.0});
  C.add(5);
  H.record(0.5);
  Registry.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
  // The same references keep working after reset.
  C.add(2);
  H.record(3.0);
  EXPECT_EQ(C.value(), 2u);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_DOUBLE_EQ(H.maxValue(), 3.0);
}

TEST(TelemetryTest, MonotoneSummaryDiff) {
  MetricsRegistry Registry;
  Registry.counter("runs").add(10);
  Registry.histogram("ms", {1.0}).record(4.0);
  MetricsSummary Before = Registry.monotoneSummary();

  Registry.counter("runs").add(5);
  Registry.counter("new_counter").add(7);
  MetricsSummary After = Registry.monotoneSummary();

  MetricsSummary Diff = MetricsRegistry::diffSummary(Before, After);
  // Unchanged entries (the histogram) drop out; changed and new ones
  // survive with their deltas.
  ASSERT_EQ(Diff.size(), 2u);
  EXPECT_EQ(Diff[0].first, "new_counter");
  EXPECT_DOUBLE_EQ(Diff[0].second, 7.0);
  EXPECT_EQ(Diff[1].first, "runs");
  EXPECT_DOUBLE_EQ(Diff[1].second, 5.0);
}

//===----------------------------------------------------------------------===//
// Baseline capture and windowed deltas (the layer behind {"stats":
// "delta"} and the health probe, docs/OBSERVABILITY.md)
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, DeltaJsonReportsOnlyTheWindowAndAdvancesTheBaseline) {
  MetricsRegistry Registry;
  Counter &Runs = Registry.counter("runs");
  Histogram &Ms = Registry.histogram("ms", {1.0, 10.0, 100.0});
  Runs.add(7);
  Ms.record(0.5);
  Ms.record(5.0);

  MetricsBaseline Base = Registry.captureBaseline();
  Runs.add(3);
  Registry.counter("fresh").add(2); // Born inside the window.
  Ms.record(50.0);
  Ms.record(50.0);

  Json W1 = Registry.deltaJson(Base);
  Expected<std::string> Schema = getString(W1, "schema");
  ASSERT_TRUE(static_cast<bool>(Schema));
  EXPECT_EQ(*Schema, "opprox-metrics-delta-1");
  Expected<double> Interval = getNumber(W1, "interval_s");
  ASSERT_TRUE(static_cast<bool>(Interval));
  EXPECT_GE(*Interval, 0.0);

  Expected<const Json *> Counters = getObject(W1, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters));
  Expected<double> RunsDelta = getNumber(**Counters, "runs");
  ASSERT_TRUE(static_cast<bool>(RunsDelta));
  EXPECT_DOUBLE_EQ(*RunsDelta, 3.0) << "pre-baseline counts must not leak in";
  Expected<double> FreshDelta = getNumber(**Counters, "fresh");
  ASSERT_TRUE(static_cast<bool>(FreshDelta));
  EXPECT_DOUBLE_EQ(*FreshDelta, 2.0);

  Expected<const Json *> Rates = getObject(W1, "rates_per_sec");
  ASSERT_TRUE(static_cast<bool>(Rates));
  Expected<double> RunsRate = getNumber(**Rates, "runs");
  ASSERT_TRUE(static_cast<bool>(RunsRate));
  EXPECT_GT(*RunsRate, 0.0);

  Expected<const Json *> Hists = getObject(W1, "histograms");
  ASSERT_TRUE(static_cast<bool>(Hists));
  Expected<const Json *> MsEntry = getObject(**Hists, "ms");
  ASSERT_TRUE(static_cast<bool>(MsEntry));
  Expected<double> MsCount = getNumber(**MsEntry, "count");
  ASSERT_TRUE(static_cast<bool>(MsCount));
  EXPECT_DOUBLE_EQ(*MsCount, 2.0);
  Expected<double> MsSum = getNumber(**MsEntry, "sum");
  ASSERT_TRUE(static_cast<bool>(MsSum));
  EXPECT_DOUBLE_EQ(*MsSum, 100.0);
  // Both window recordings sit in the (10, 100] bucket, so the interval
  // percentiles interpolate inside it -- untouched by the two
  // pre-baseline recordings in lower buckets.
  Expected<double> P50 = getNumber(**MsEntry, "p50");
  ASSERT_TRUE(static_cast<bool>(P50));
  EXPECT_GT(*P50, 10.0);
  EXPECT_LE(*P50, 100.0);

  // deltaJson advanced the baseline in place: a quiet second window is
  // empty rather than repeating the first.
  Json W2 = Registry.deltaJson(Base);
  Expected<const Json *> Counters2 = getObject(W2, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters2));
  EXPECT_FALSE((*Counters2)->find("runs"))
      << "zero-delta instruments must be dropped from the window";
  Expected<const Json *> Hists2 = getObject(W2, "histograms");
  ASSERT_TRUE(static_cast<bool>(Hists2));
  EXPECT_FALSE((*Hists2)->find("ms"));

  // And the third window sees exactly the traffic after the second.
  Runs.add(4);
  Json W3 = Registry.deltaJson(Base);
  Expected<const Json *> Counters3 = getObject(W3, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters3));
  Expected<double> RunsDelta3 = getNumber(**Counters3, "runs");
  ASSERT_TRUE(static_cast<bool>(RunsDelta3));
  EXPECT_DOUBLE_EQ(*RunsDelta3, 4.0);
}

TEST(TelemetryTest, DeltaJsonSurvivesARegistryResetMidWindow) {
  MetricsRegistry Registry;
  Counter &Runs = Registry.counter("runs");
  Histogram &Ms = Registry.histogram("ms", {1.0});
  Runs.add(9);
  Ms.record(0.5);
  MetricsBaseline Base = Registry.captureBaseline();

  Registry.reset(); // Counters fall below the baseline.
  Runs.add(2);
  Json W = Registry.deltaJson(Base);
  // Windowed values clamp at zero instead of wrapping around; the
  // post-reset traffic that fits under the old baseline is absorbed.
  Expected<const Json *> Counters = getObject(W, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters));
  EXPECT_FALSE((*Counters)->find("runs"));

  // Once the baseline has caught up, windows report correctly again.
  Runs.add(5);
  Json W2 = Registry.deltaJson(Base);
  Expected<const Json *> Counters2 = getObject(W2, "counters");
  ASSERT_TRUE(static_cast<bool>(Counters2));
  Expected<double> RunsDelta = getNumber(**Counters2, "runs");
  ASSERT_TRUE(static_cast<bool>(RunsDelta));
  EXPECT_DOUBLE_EQ(*RunsDelta, 5.0);
}

TEST(TelemetryTest, PercentileFromCountsEdgeCases) {
  const std::vector<double> Bounds = {1.0, 10.0};
  // Empty window: every percentile is zero.
  EXPECT_DOUBLE_EQ(Histogram::percentileFromCounts(Bounds, {0, 0, 0}, 50), 0.0);
  // A single sample in a finite bucket answers within that bucket.
  double Single = Histogram::percentileFromCounts(Bounds, {0, 1, 0}, 50);
  EXPECT_GT(Single, 1.0);
  EXPECT_LE(Single, 10.0);
  // All mass in the overflow bucket: interpolation has no upper edge, so
  // the answer collapses to the last finite bound, never infinity.
  double Overflow = Histogram::percentileFromCounts(Bounds, {0, 0, 4}, 99);
  EXPECT_DOUBLE_EQ(Overflow, 10.0);
  // P clamps: P <= 0 is the lower edge of the first populated bucket,
  // P >= 100 the upper edge of the last populated one.
  EXPECT_DOUBLE_EQ(Histogram::percentileFromCounts(Bounds, {2, 2, 0}, 0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::percentileFromCounts(Bounds, {2, 2, 0}, 100),
                   10.0);
}

TEST(TelemetryTest, GaugeSetMaxConcurrentHammerKeepsTheHighWater) {
  MetricsRegistry Registry;
  Gauge &G = Registry.gauge("high_water");
  constexpr size_t Lanes = 16;
  constexpr size_t PerLane = 2000;
  ThreadPool Pool(8);
  Pool.parallelFor(Lanes, [&G](size_t Lane) {
    for (size_t I = 1; I <= PerLane; ++I)
      G.setMax(static_cast<double>(Lane * PerLane + I));
  });
  // The CAS loop must never regress the gauge: the final value is the
  // global maximum ever offered, regardless of interleaving.
  EXPECT_DOUBLE_EQ(G.value(), static_cast<double>(Lanes * PerLane));
}

//===----------------------------------------------------------------------===//
// Chrome trace output
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, ChromeTraceWellFormed) {
  TraceRecorder Recorder;
  Recorder.enable();
  {
    TraceSpan Outer("outer", "test", &Recorder);
    Outer.arg("budget", 10.0);
    TraceSpan Inner("inner", "test", &Recorder);
  }
  Recorder.instant("marker", "test");

  Expected<Json> Doc = Json::parse(Recorder.chromeTraceText());
  ASSERT_TRUE(Doc) << Doc.error().message();
  Expected<const Json *> Events = getArray(*Doc, "traceEvents");
  ASSERT_TRUE(Events);
  ASSERT_EQ((*Events)->size(), 3u);

  for (size_t I = 0; I < (*Events)->size(); ++I) {
    const Json &E = (*Events)->at(I);
    EXPECT_TRUE(E.find("name") && E.find("name")->isString());
    EXPECT_TRUE(E.find("cat") && E.find("cat")->isString());
    EXPECT_TRUE(E.find("ts") && E.find("ts")->isNumber());
    EXPECT_TRUE(E.find("pid") && E.find("pid")->isNumber());
    EXPECT_TRUE(E.find("tid") && E.find("tid")->isNumber());
    ASSERT_TRUE(E.find("ph") && E.find("ph")->isString());
    std::string Phase = E.find("ph")->asString();
    EXPECT_TRUE(Phase == "X" || Phase == "i");
    if (Phase == "X")
      EXPECT_TRUE(E.find("dur") && E.find("dur")->isNumber());
  }

  // Sorted by start time: the enclosing span precedes the nested one,
  // and the nested span starts no earlier than its parent.
  const Json &First = (*Events)->at(0);
  EXPECT_EQ(First.find("name")->asString(), "outer");
  EXPECT_LE(First.find("ts")->asNumber(),
            (*Events)->at(1).find("ts")->asNumber());
  // The outer span's args came through.
  const Json *Args = First.find("args");
  ASSERT_NE(Args, nullptr);
  ASSERT_NE(Args->find("budget"), nullptr);
  EXPECT_DOUBLE_EQ(Args->find("budget")->asNumber(), 10.0);
}

TEST(TelemetryTest, DisabledRecorderCapturesNothing) {
  TraceRecorder Recorder; // Disabled by default.
  {
    TraceSpan Span("invisible", "test", &Recorder);
    EXPECT_GE(Span.seconds(), 0.0); // Stopwatch still works.
  }
  EXPECT_EQ(Recorder.eventCount(), 0u);
  // An empty trace is still a valid Chrome trace document.
  Expected<Json> Doc = Json::parse(Recorder.chromeTraceText());
  ASSERT_TRUE(Doc) << Doc.error().message();
  Expected<const Json *> Events = getArray(*Doc, "traceEvents");
  ASSERT_TRUE(Events);
  EXPECT_EQ((*Events)->size(), 0u);
}

TEST(TelemetryTest, RecorderClearDropsEventsKeepsWorking) {
  TraceRecorder Recorder;
  Recorder.enable();
  { TraceSpan Span("a", "test", &Recorder); }
  EXPECT_EQ(Recorder.eventCount(), 1u);
  Recorder.clear();
  EXPECT_EQ(Recorder.eventCount(), 0u);
  { TraceSpan Span("b", "test", &Recorder); }
  ASSERT_EQ(Recorder.eventCount(), 1u);
  EXPECT_EQ(Recorder.events().front().Name, "b");
}

//===----------------------------------------------------------------------===//
// Leveled logging
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, LogLevelParsing) {
  LogLevel Level = LogLevel::Info;
  EXPECT_TRUE(parseLogLevel("quiet", Level));
  EXPECT_EQ(Level, LogLevel::Quiet);
  EXPECT_TRUE(parseLogLevel("debug", Level));
  EXPECT_EQ(Level, LogLevel::Debug);
  EXPECT_TRUE(parseLogLevel("info", Level));
  EXPECT_EQ(Level, LogLevel::Info);
  EXPECT_FALSE(parseLogLevel("verbose", Level));
  EXPECT_FALSE(parseLogLevel("", Level));
  EXPECT_FALSE(parseLogLevel("INFO", Level)) << "levels are case-sensitive";
  EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
}
