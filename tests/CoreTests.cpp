//===- tests/CoreTests.cpp - sampler/profiler/detector tests --------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/ControlFlowModel.h"
#include "core/PhaseDetector.h"
#include "core/Profiler.h"
#include "core/Sampler.h"
#include "core/TrainingData.h"
#include "support/StringUtils.h"
#include <gtest/gtest.h>
#include <set>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Sampler
//===----------------------------------------------------------------------===//

TEST(SamplerTest, LocalConfigsCoverEachBlockExhaustively) {
  Rng R(1);
  SamplingPlan Plan = makeSamplingPlan({5, 3, 4}, 0, R);
  EXPECT_EQ(Plan.LocalConfigs.size(), 12u); // 5 + 3 + 4.
  EXPECT_TRUE(Plan.JointConfigs.empty());
  for (const auto &Config : Plan.LocalConfigs) {
    int NonZero = 0;
    for (int L : Config)
      NonZero += L != 0;
    EXPECT_EQ(NonZero, 1) << "local config approximates exactly one block";
  }
  // Every (block, level) pair appears once.
  std::set<std::pair<size_t, int>> Seen;
  for (const auto &Config : Plan.LocalConfigs)
    for (size_t B = 0; B < Config.size(); ++B)
      if (Config[B] != 0)
        Seen.insert({B, Config[B]});
  EXPECT_EQ(Seen.size(), 12u);
}

TEST(SamplerTest, JointConfigsNonZeroAndInRange) {
  Rng R(2);
  SamplingPlan Plan = makeSamplingPlan({5, 5}, 50, R);
  EXPECT_EQ(Plan.JointConfigs.size(), 50u);
  for (const auto &Config : Plan.JointConfigs) {
    bool AllZero = true;
    for (size_t B = 0; B < Config.size(); ++B) {
      EXPECT_GE(Config[B], 0);
      EXPECT_LE(Config[B], 5);
      AllZero = AllZero && Config[B] == 0;
    }
    EXPECT_FALSE(AllZero);
  }
  EXPECT_EQ(Plan.all().size(), Plan.size());
}

TEST(SamplerTest, EnumerateAllConfigsIsCartesian) {
  auto All = enumerateAllConfigs({2, 1});
  EXPECT_EQ(All.size(), 6u);
  EXPECT_EQ(All.front(), (std::vector<int>{0, 0}));
  std::set<std::vector<int>> Unique(All.begin(), All.end());
  EXPECT_EQ(Unique.size(), 6u);
}

TEST(SamplerTest, EnumerateMatchesConfigurationCount) {
  auto All = enumerateAllConfigs({5, 5, 5, 5});
  EXPECT_EQ(All.size(), 1296u); // 6^4, the per-phase space of LULESH.
}

TEST(SamplerTest, ConfigCursorStreamsEnumerationOrder) {
  std::vector<int> MaxLevels = {2, 1, 3};
  auto All = enumerateAllConfigs(MaxLevels);
  ConfigCursor Cursor(MaxLevels);
  EXPECT_EQ(Cursor.spaceSize(), All.size());
  size_t I = 0;
  for (; !Cursor.done(); Cursor.next(), ++I) {
    ASSERT_LT(I, All.size());
    EXPECT_EQ(Cursor.index(), I);
    EXPECT_EQ(Cursor.levels(), All[I]);
  }
  EXPECT_EQ(I, All.size());
}

TEST(SamplerTest, ConfigCursorSeekIsRandomAccess) {
  std::vector<int> MaxLevels = {2, 2, 2};
  auto All = enumerateAllConfigs(MaxLevels);
  ConfigCursor Cursor(MaxLevels);
  for (size_t I : {26u, 0u, 13u, 5u, 13u}) {
    Cursor.seek(I);
    ASSERT_FALSE(Cursor.done());
    EXPECT_EQ(Cursor.index(), I);
    EXPECT_EQ(Cursor.levels(), All[I]);
  }
  Cursor.seek(All.size());
  EXPECT_TRUE(Cursor.done());
}

TEST(SamplerTest, ConfigCursorSkipSubtreeAdvancesDigit) {
  // Skipping digit D from index I lands on the next multiple of D's
  // stride -- the first config whose digits >= D differ.
  std::vector<int> MaxLevels = {2, 2, 2}; // Strides 1, 3, 9.
  auto All = enumerateAllConfigs(MaxLevels);
  ConfigCursor Cursor(MaxLevels);
  Cursor.seek(4); // {1, 1, 0}.
  Cursor.skipSubtree(1);
  ASSERT_FALSE(Cursor.done());
  EXPECT_EQ(Cursor.index(), 6u); // {0, 2, 0}: digit 1 advanced, digit 0 reset.
  EXPECT_EQ(Cursor.levels(), All[6]);
  Cursor.skipSubtree(2);
  ASSERT_FALSE(Cursor.done());
  EXPECT_EQ(Cursor.index(), 9u); // Next value of the 9-stride digit.
  // Skipping the top digit at its maximum exhausts the cursor.
  Cursor.seek(All.size() - 1);
  Cursor.skipSubtree(2);
  EXPECT_TRUE(Cursor.done());
}

TEST(SamplerTest, ConfigSpaceSizeRejectsOversizedSpaces) {
  EXPECT_TRUE(static_cast<bool>(configSpaceSize({5, 5, 5, 5})));
  Expected<size_t> Huge =
      configSpaceSize(std::vector<int>(64, 9)); // 10^64 configs.
  ASSERT_FALSE(static_cast<bool>(Huge));
  EXPECT_NE(Huge.error().message().find("exceeds the limit"),
            std::string::npos);
  // A caller-provided tighter limit is honored too.
  EXPECT_FALSE(static_cast<bool>(configSpaceSize({5, 5}, 35)));
}

TEST(SamplerTest, EnumerateAllConfigsHardFailsOnOversizedSpace) {
  // The old assert compiled out in NDEBUG builds and silently tried to
  // materialize the space; now every build type fails loudly.
  EXPECT_DEATH(enumerateAllConfigs(std::vector<int>(64, 9)),
               "exceeds the limit");
}

TEST(SamplerTest, ConfigCursorHardFailsOnOversizedSpace) {
  // The cursor constructor has its own fatal guard (Sampler.cpp), hit by
  // callers that stream configurations instead of materializing them.
  EXPECT_DEATH(ConfigCursor(std::vector<int>(64, 9)), "exceeds the limit");
}

//===----------------------------------------------------------------------===//
// TrainingSet
//===----------------------------------------------------------------------===//

namespace {
TrainingSample makeSample(int Phase, double Speedup, double Qos, int Class) {
  TrainingSample S;
  S.Input = {1.0, 2.0};
  S.Levels = {1, 0};
  S.Phase = Phase;
  S.Speedup = Speedup;
  S.QosDegradation = Qos;
  S.OuterIterations = 100;
  S.ControlFlowClass = Class;
  return S;
}
} // namespace

TEST(TrainingSetTest, FiltersByPhaseAndClass) {
  TrainingSet Set;
  Set.add(makeSample(0, 1.1, 2, 0));
  Set.add(makeSample(1, 1.2, 3, 0));
  Set.add(makeSample(0, 1.3, 4, 1));
  Set.add(makeSample(AllPhases, 1.4, 5, 0));
  EXPECT_EQ(Set.forPhase(0).size(), 2u);
  EXPECT_EQ(Set.forPhase(AllPhases).size(), 1u);
  EXPECT_EQ(Set.forClass(1).size(), 1u);
  EXPECT_EQ(Set.filter([](const TrainingSample &S) {
                 return S.Speedup > 1.15;
               }).size(),
            3u);
}

TEST(TrainingSetTest, CsvRoundTrip) {
  TrainingSet Set;
  Set.add(makeSample(2, 1.25, 7.5, 3));
  Set.add(makeSample(AllPhases, 0.9, 1000.0, 0));
  std::string Csv = Set.toCsv({"a", "b"}, {"k1", "k2"});
  Expected<TrainingSet> Back = TrainingSet::fromCsv(Csv, 2, 2);
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0].Phase, 2);
  EXPECT_DOUBLE_EQ((*Back)[0].Speedup, 1.25);
  EXPECT_DOUBLE_EQ((*Back)[1].QosDegradation, 1000.0);
  EXPECT_EQ((*Back)[1].Phase, AllPhases);
  EXPECT_EQ((*Back)[0].Levels, (std::vector<int>{1, 0}));
}

TEST(TrainingSetTest, CsvHeaderNamesColumns) {
  TrainingSet Set;
  Set.add(makeSample(0, 1, 0, 0)); // 2 inputs, 2 levels.
  std::string Csv = Set.toCsv({"mesh", "regions"}, {"forces", "strain"});
  EXPECT_EQ(split(Csv, '\n')[0],
            "in_mesh,in_regions,al_forces,al_strain,phase,speedup,"
            "qos_degradation,outer_iterations,cf_class");
}

TEST(TrainingSetTest, CsvRejectsMalformedRows) {
  std::string Bad = "h1,h2,h3,h4,h5,h6,h7\n1,2,3\n";
  Expected<TrainingSet> R = TrainingSet::fromCsv(Bad, 1, 1);
  EXPECT_FALSE(static_cast<bool>(R));
  std::string BadNum = "h,h,h,h,h,h,h\n1,x,0,1.0,0.0,10,0\n";
  EXPECT_FALSE(static_cast<bool>(TrainingSet::fromCsv(BadNum, 1, 1)));
}

TEST(TrainingSetTest, CsvSkipsBlankLines) {
  TrainingSet Set;
  Set.add(makeSample(0, 1, 0, 0));
  std::string Csv = Set.toCsv({"a", "b"}, {"x", "y"}) + "\n\n";
  Expected<TrainingSet> Back = TrainingSet::fromCsv(Csv, 2, 2);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->size(), 1u);
}

//===----------------------------------------------------------------------===//
// SignatureRegistry
//===----------------------------------------------------------------------===//

TEST(SignatureTest, StableIdsFirstComeFirstServed) {
  SignatureRegistry Reg;
  EXPECT_EQ(Reg.classOf("a,b"), 0);
  EXPECT_EQ(Reg.classOf("b,a"), 1);
  EXPECT_EQ(Reg.classOf("a,b"), 0);
  EXPECT_EQ(Reg.numClasses(), 2u);
  EXPECT_EQ(Reg.lookup("b,a"), 1);
  EXPECT_EQ(Reg.lookup("missing"), -1);
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, MeasureProducesSaneSample) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  TrainingSample S =
      Prof.measure(App->defaultInput(), {2, 0, 0}, /*Phase=*/1, 4);
  EXPECT_EQ(S.Input, App->defaultInput());
  EXPECT_EQ(S.Phase, 1);
  EXPECT_GT(S.Speedup, 0.0);
  EXPECT_GE(S.QosDegradation, 0.0);
  EXPECT_GT(S.OuterIterations, 0.0);
  EXPECT_EQ(S.ControlFlowClass, 0);
  EXPECT_EQ(Prof.runsPerformed(), 1u);
}

TEST(ProfilerTest, CollectCoversPhasesAndConfigs) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  ProfileOptions Opts;
  Opts.NumPhases = 2;
  Opts.RandomJointSamples = 3;
  std::vector<std::vector<double>> Inputs = {App->defaultInput()};
  TrainingSet Set = Prof.collect(Inputs, Opts);
  // (3 blocks x 5 levels local + 3 joint) x (2 phases + all) = 54.
  EXPECT_EQ(Set.size(), 54u);
  EXPECT_EQ(Set.forPhase(0).size(), 18u);
  EXPECT_EQ(Set.forPhase(1).size(), 18u);
  EXPECT_EQ(Set.forPhase(AllPhases).size(), 18u);
}

TEST(ProfilerTest, GoldenCacheAvoidsRecomputation) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  const RunResult &A = Golden.exactRun(App->defaultInput());
  const RunResult &B = Golden.exactRun(App->defaultInput());
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(Golden.numCached(), 1u);
  EXPECT_EQ(Golden.nominalIterations(App->defaultInput()),
            A.OuterIterations);
}

//===----------------------------------------------------------------------===//
// ControlFlowModel
//===----------------------------------------------------------------------===//

TEST(ControlFlowTest, PredictsSeparableClasses) {
  std::vector<std::vector<double>> Inputs;
  std::vector<int> Classes;
  for (int I = 0; I < 20; ++I) {
    Inputs.push_back({static_cast<double>(I), 1.0});
    Classes.push_back(I < 10 ? 0 : 1);
  }
  ControlFlowModel M = ControlFlowModel::train(Inputs, Classes);
  EXPECT_EQ(M.predictClass({3.0, 1.0}), 0);
  EXPECT_EQ(M.predictClass({15.0, 1.0}), 1);
  EXPECT_DOUBLE_EQ(M.accuracy(Inputs, Classes), 1.0);
}

TEST(ControlFlowTest, FfmpegFilterOrderIsLearnable) {
  // The classifier learns that filter_order selects the control flow,
  // exactly as Sec. 3.4 describes.
  auto App = createApp("ffmpeg");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  std::vector<std::vector<double>> Inputs;
  std::vector<int> Classes;
  for (const auto &Input : App->trainingInputs()) {
    Inputs.push_back(Input);
    Classes.push_back(Prof.signatures().classOf(
        Golden.exactRun(Input).ControlFlowSignature));
  }
  EXPECT_EQ(Prof.signatures().numClasses(), 2u);
  ControlFlowModel M = ControlFlowModel::train(Inputs, Classes);
  EXPECT_DOUBLE_EQ(M.accuracy(Inputs, Classes), 1.0);
}

//===----------------------------------------------------------------------===//
// PhaseDetector (Algorithm 1)
//===----------------------------------------------------------------------===//

TEST(PhaseDetectorTest, MaxQosDiffNonNegative) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  PhaseDetectOptions Opts;
  Opts.ProbeConfigs = 3;
  EXPECT_GE(maxQosDiff(Prof, App->defaultInput(), 2, Opts), 0.0);
}

TEST(PhaseDetectorTest, ReturnsPowerOfTwoWithinCap) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  PhaseDetectOptions Opts;
  Opts.ProbeConfigs = 3;
  Opts.MaxPhases = 8;
  size_t N = detectPhaseCount(Prof, App->defaultInput(), Opts);
  EXPECT_TRUE(N == 2 || N == 4 || N == 8) << N;
}

TEST(PhaseDetectorTest, HugeThresholdStopsAtTwo) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  PhaseDetectOptions Opts;
  Opts.ProbeConfigs = 2;
  Opts.Threshold = 1e9;
  EXPECT_EQ(detectPhaseCount(Prof, App->defaultInput(), Opts), 2u);
}
