//===- tests/AppModelTests.cpp - model-stack tests ------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/AppModel.h"
#include "core/Profiler.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace opprox;

namespace {

/// One shared PSO training pass for the whole file (cheap but real).
struct TrainedFixture {
  std::unique_ptr<ApproxApp> App;
  std::unique_ptr<GoldenCache> Golden;
  TrainingSet Data;
  AppModel Model;

  TrainedFixture() {
    App = createApp("pso");
    Golden = std::make_unique<GoldenCache>(*App);
    Profiler Prof(*App, *Golden);
    ProfileOptions Opts;
    Opts.NumPhases = 4;
    Opts.RandomJointSamples = 16;
    Data = Prof.collect(App->trainingInputs(), Opts);
    Model = ModelBuilder::build(Data, 4, App->numBlocks(),
                                ModelBuildOptions());
  }
};

TrainedFixture &fixture() {
  static TrainedFixture F;
  return F;
}

} // namespace

TEST(AppModelTest, ShapeMatchesTraining) {
  const AppModel &M = fixture().Model;
  EXPECT_EQ(M.numPhases(), 4u);
  EXPECT_GE(M.numClasses(), 1u);
}

TEST(AppModelTest, PredictionsAreFinite) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  Rng R(5);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<int> Levels;
    for (int Max : F.App->maxLevels())
      Levels.push_back(static_cast<int>(R.range(0, Max)));
    for (size_t P = 0; P < 4; ++P) {
      const PhaseModels &PM = F.Model.phaseModels(In, P);
      EXPECT_TRUE(std::isfinite(PM.predictSpeedup(In, Levels)));
      EXPECT_TRUE(std::isfinite(PM.predictQos(In, Levels)));
      EXPECT_TRUE(std::isfinite(PM.predictIterations(In, Levels)));
      EXPECT_GE(PM.predictQos(In, Levels), 0.0);
      EXPECT_GT(PM.predictSpeedup(In, Levels), 0.0);
    }
  }
}

TEST(AppModelTest, ConservativeBoundsBracketPointEstimates) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  std::vector<int> Levels = {2, 1, 3};
  for (size_t P = 0; P < 4; ++P) {
    const PhaseModels &PM = F.Model.phaseModels(In, P);
    EXPECT_LE(PM.conservativeSpeedup(In, Levels, 0.99),
              PM.predictSpeedup(In, Levels) + 1e-9);
    EXPECT_GE(PM.conservativeQos(In, Levels, 0.99),
              PM.predictQos(In, Levels) - 1e-9);
  }
}

TEST(AppModelTest, HigherCoverageIsMoreConservative) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  std::vector<int> Levels = {3, 3, 3};
  const PhaseModels &PM = F.Model.phaseModels(In, 0);
  EXPECT_LE(PM.conservativeQos(In, Levels, 0.5),
            PM.conservativeQos(In, Levels, 0.99) + 1e-9);
  EXPECT_GE(PM.conservativeSpeedup(In, Levels, 0.5),
            PM.conservativeSpeedup(In, Levels, 0.99) - 1e-9);
}

TEST(AppModelTest, RoiFavorsLatePhases) {
  // For PSO (and every app here) later phases deliver more speedup per
  // unit error, so ROI must increase with the phase index -- this is
  // what drives the paper's budget allocation (LULESH example:
  // 0.166/0.17/0.265/0.399).
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  double First = F.Model.phaseModels(In, 0).roi();
  double Last = F.Model.phaseModels(In, 3).roi();
  EXPECT_GT(Last, First);
}

TEST(AppModelTest, CrossValidatedQualityIsReasonable) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  for (size_t P = 0; P < 4; ++P) {
    const PhaseModels &PM = F.Model.phaseModels(In, P);
    EXPECT_GT(PM.speedupCvR2(), 0.0) << "phase " << P;
    EXPECT_GT(PM.qosCvR2(), 0.0) << "phase " << P;
  }
}

TEST(AppModelTest, ExactConfigPredictsNearBaseline) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  std::vector<int> Zero(F.App->numBlocks(), 0);
  for (size_t P = 0; P < 4; ++P) {
    const PhaseModels &PM = F.Model.phaseModels(In, P);
    EXPECT_NEAR(PM.predictSpeedup(In, Zero), 1.0, 0.35);
    EXPECT_LT(PM.predictQos(In, Zero), 10.0);
  }
}

TEST(AppModelTest, IterationModelTracksNominal) {
  const TrainedFixture &F = fixture();
  const std::vector<double> In = F.App->defaultInput();
  std::vector<int> Zero(F.App->numBlocks(), 0);
  double Nominal = static_cast<double>(
      F.Golden->nominalIterations(In));
  for (size_t P = 0; P < 4; ++P) {
    double Est = F.Model.phaseModels(In, P).predictIterations(In, Zero);
    EXPECT_NEAR(Est, Nominal, 0.5 * Nominal) << "phase " << P;
  }
}

TEST(AppModelTest, UnknownClassFallsBackToZero) {
  const TrainedFixture &F = fixture();
  // classOf never returns an out-of-range id even for weird inputs.
  int C = F.Model.classOf({1e9, 1e9});
  EXPECT_GE(C, 0);
  EXPECT_LT(static_cast<size_t>(C), std::max<size_t>(F.Model.numClasses(), 1));
}
